"""Command-line interface: device simulation from JSON specs.

Eight subcommands mirror the workflows of the library:

* ``simulate`` — one self-consistent bias point of a device spec;
* ``sweep``    — a transfer (Id-Vg) sweep;
* ``doctor``   — observability health check: a small monitored sweep with
  convergence tables, physics-invariant verdicts, the per-level
  communication matrix, the self-healing account and a perf-baseline
  comparison; with ``--events FILE`` it instead replays a JSONL event
  stream offline and prints the same summary ``repro top`` renders;
* ``chaos``    — the chaos-campaign harness: injected faults (NaN,
  ill-conditioning, hangs, dead ranks) at every parallel level against a
  mini device, verifying the degradation ladders heal them;
* ``bands``    — bulk band-structure summary of a material;
* ``scaling``  — the performance-model projection table;
* ``trace``    — summarise a trace JSON produced by ``--trace``;
* ``top``      — render in-flight progress (bar, ETA, recent points,
  degradations) from a ``--events`` JSONL stream, live with ``--follow``.

``simulate`` and ``sweep`` accept ``--trace FILE``: the run executes under
an active :class:`repro.observability.Tracer`, writes a
``chrome://tracing``-loadable timeline to FILE, prints the measured
sustained-Flop/s report and embeds it in the result JSON (``"perf"`` key).
They also accept ``--metrics FILE``: the run executes under an active
:class:`repro.observability.MetricsRegistry` and its snapshot (counters,
gauges, histograms, convergence series) is written to FILE as JSON.
And they accept ``--events FILE`` (default ``$REPRO_EVENTS``): the run
appends typed JSONL progress events (``run_started``, ``point_done``,
``heartbeat``, ``degradation``, ``straggler``, ``chunk_retired``,
``run_finished``) that ``repro top FILE`` renders while the run is still
in flight — the event file is the whole interface, no IPC needed.

Everything reads/writes plain JSON so the CLI composes with shell
pipelines; ``python -m repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager

import numpy as np

__all__ = ["main", "build_parser"]


@contextmanager
def _tracing(trace_path, root_name):
    """Activate a fresh tracer with a root span (no-op when path is falsy)."""
    if not trace_path:
        yield None
        return
    from .observability import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer), tracer.span(root_name, category="phase"):
        yield tracer


def _finish_trace(tracer, trace_path):
    """Write the Chrome trace, print the PerfReport, return its dict."""
    if tracer is None:
        return None
    from .observability import PerfReport, write_chrome_trace

    write_chrome_trace(tracer, trace_path)
    report = PerfReport.from_tracer(tracer)
    print(report.summary())
    print(f"trace  : {trace_path} (load in chrome://tracing or Perfetto)")
    return report.to_dict()


@contextmanager
def _metering(metrics_path):
    """Activate a fresh metrics registry (no-op when path is falsy)."""
    if not metrics_path:
        yield None
        return
    from .observability import MetricsRegistry, use_metrics

    registry = MetricsRegistry()
    with use_metrics(registry):
        yield registry


def _finish_metrics(registry, metrics_path):
    """Write the metrics snapshot JSON; returns the snapshot or None."""
    if registry is None:
        return None
    snap = registry.snapshot()
    snap.write(metrics_path)
    print(f"metrics: {metrics_path} "
          f"({len(snap.counters)} counters, {len(snap.series)} series)")
    return snap


@contextmanager
def _eventing(events_path, command, **context):
    """Activate a JSONL telemetry event stream (no-op when path is falsy).

    An empty/missing ``--events`` falls back to ``$REPRO_EVENTS``; the
    writer is installed process-wide via
    :func:`repro.observability.use_events`, so the sweep loop, the
    backends and the transport layer all append to the same file.  The
    writer's ``close`` emits a final ``run_finished`` if the run did not
    emit one itself.
    """
    import os

    if not events_path:
        events_path = os.environ.get("REPRO_EVENTS") or ""
    if not events_path:
        yield None
        return
    from .observability import TelemetryWriter, use_events

    ctx = {"command": command}
    ctx.update({k: v for k, v in context.items() if v is not None})
    writer = TelemetryWriter(events_path, context=ctx)
    try:
        with use_events(writer):
            yield writer
    finally:
        writer.close()
        print(f"events : {events_path}")


def _events_replay(path) -> int:
    """Offline replay of a JSONL event stream (doctor --events / top)."""
    import time

    from .observability import (
        read_events,
        render_event_summary,
        summarize_events,
        validate_events,
    )

    events = read_events(path)
    problems = validate_events(events)
    print(render_event_summary(summarize_events(events), now=time.time()))
    if problems:
        print("schema : " + "; ".join(problems))
        return 1
    print(f"schema : {len(events)} event(s) valid")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="atomistic nanoelectronic device simulator (OMEN reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_args(p):
        p.add_argument(
            "--backend", choices=("serial", "thread", "process"),
            default=None,
            help="energy-grid execution backend (default: $REPRO_BACKEND "
                 "or serial)",
        )
        p.add_argument(
            "--workers", type=int, default=None,
            help="worker count for the thread/process backends "
                 "(default: $REPRO_WORKERS or 2)",
        )
        p.add_argument(
            "--batch-energies", action="store_true",
            help="solve energy chunks as stacked numpy calls instead of "
                 "per-point loops (agrees with per-point to <1e-10)",
        )
        p.add_argument(
            "--cache-sigma", action="store_true",
            help="share a contact self-energy cache across energy points "
                 "and SCF iterations (invalidated on potential updates)",
        )
        p.add_argument(
            "--precision", choices=("fp64", "mixed", "fp32"),
            default=None,
            help="numeric mode of the RGF kernel: fp64 (default; "
                 "$REPRO_PRECISION), mixed (complex64 factors + fp64 "
                 "iterative refinement, FP64 escalation on stall), or "
                 "fp32 (pure complex64 screening)",
        )
        p.add_argument(
            "--zero-copy", action="store_true",
            help="publish per-bias solve state once into shared memory "
                 "so process-backend tasks ship only (plan_id, slots) "
                 "instead of pickled solver state (default: "
                 "$REPRO_ZERO_COPY; bit-identical on every backend)",
        )
        p.add_argument(
            "--adaptive-energies", type=int, nargs="?", const=512,
            default=None, metavar="BUDGET",
            help="adaptive energy quadrature: refine the grid in "
                 "backend-scheduled bisection waves up to BUDGET nodes "
                 "per k-point (default budget 512; env: $REPRO_ADAPTIVE "
                 "turns the mode on with defaults)",
        )
        p.add_argument(
            "--energy-tol", type=float, default=None, metavar="TOL",
            help="interpolation-error tolerance of the adaptive energy "
                 "grid on the normalized [current, spectral] indicator "
                 "(default 0.02; implies --adaptive-energies)",
        )

    p_sim = sub.add_parser("simulate", help="one self-consistent bias point")
    p_sim.add_argument("spec", help="device spec JSON file")
    p_sim.add_argument("--vg", type=float, default=0.0, help="gate voltage (V)")
    p_sim.add_argument("--vd", type=float, default=0.05, help="drain voltage (V)")
    p_sim.add_argument("--method", choices=("wf", "rgf"), default="wf")
    p_sim.add_argument("--n-energy", type=int, default=81)
    add_backend_args(p_sim)
    p_sim.add_argument("-o", "--output", help="write results JSON here")
    p_sim.add_argument(
        "--trace", metavar="FILE",
        help="measure the run: write a Chrome-trace JSON timeline to FILE "
             "and report measured sustained Flop/s",
    )
    p_sim.add_argument(
        "--metrics", metavar="FILE",
        help="monitor the run: write the metrics-registry snapshot "
             "(counters, convergence series, histograms) to FILE as JSON",
    )
    p_sim.add_argument(
        "--events", metavar="FILE",
        help="stream typed JSONL progress events to FILE, renderable "
             "in flight with 'repro top FILE' (default: $REPRO_EVENTS)",
    )

    p_sweep = sub.add_parser("sweep", help="transfer (Id-Vg) sweep")
    p_sweep.add_argument("spec")
    p_sweep.add_argument("--vg-start", type=float, default=-0.4)
    p_sweep.add_argument("--vg-stop", type=float, default=0.1)
    p_sweep.add_argument("--vg-points", type=int, default=6)
    p_sweep.add_argument("--vd", type=float, default=0.05)
    p_sweep.add_argument("--method", choices=("wf", "rgf"), default="wf")
    p_sweep.add_argument("--n-energy", type=int, default=81)
    add_backend_args(p_sweep)
    p_sweep.add_argument("-o", "--output")
    p_sweep.add_argument(
        "--checkpoint", metavar="PATH",
        help="atomically checkpoint completed points to this npz file",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint, recomputing only missing points",
    )
    p_sweep.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per bias point for faulted solves",
    )
    p_sweep.add_argument(
        "--inject-faults", type=int, metavar="SEED", default=None,
        help="fault drill: deterministically inject faults with this seed",
    )
    p_sweep.add_argument(
        "--fault-rate", type=float, default=0.25,
        help="per-bias-point fault probability for --inject-faults",
    )
    p_sweep.add_argument(
        "--trace", metavar="FILE",
        help="measure the run: write a Chrome-trace JSON timeline to FILE "
             "and report measured sustained Flop/s",
    )
    p_sweep.add_argument(
        "--metrics", metavar="FILE",
        help="monitor the run: write the metrics-registry snapshot "
             "(counters, convergence series, histograms) to FILE as JSON",
    )
    p_sweep.add_argument(
        "--events", metavar="FILE",
        help="stream typed JSONL progress events to FILE, renderable "
             "in flight with 'repro top FILE' (default: $REPRO_EVENTS)",
    )

    p_doc = sub.add_parser(
        "doctor",
        help="observability health check: monitored sweep, invariant "
             "verdicts, per-level comm matrix, baseline comparison",
    )
    p_doc.add_argument(
        "spec", nargs="?", default=None,
        help="device spec JSON file (not needed with --events)",
    )
    p_doc.add_argument(
        "--events", metavar="FILE",
        help="offline replay: read a JSONL event stream, print the same "
             "summary 'repro top' renders plus a schema verdict, and exit",
    )
    p_doc.add_argument("--vg-start", type=float, default=-0.2)
    p_doc.add_argument("--vg-stop", type=float, default=0.0)
    p_doc.add_argument("--vg-points", type=int, default=2)
    p_doc.add_argument("--vd", type=float, default=0.05)
    p_doc.add_argument("--method", choices=("wf", "rgf"), default="wf")
    p_doc.add_argument("--n-energy", type=int, default=41)
    add_backend_args(p_doc)
    p_doc.add_argument(
        "--ranks", type=int, default=64,
        help="modelled communicator size for the per-level comm matrix",
    )
    p_doc.add_argument(
        "--max-spatial", type=int, default=2,
        help="spatial (SplitSolve) level cap of the modelled rank grid",
    )
    p_doc.add_argument(
        "--strict", action="store_true",
        help="escalate invariant violations to PhysicsInvariantError and "
             "let the baseline comparison fail (default: warn-only)",
    )
    p_doc.add_argument(
        "--inject-faults", type=int, metavar="SEED", default=None,
        help="fault drill: corrupt one density with the deterministic "
             "injector and verify the violation is recorded, not fatal",
    )
    p_doc.add_argument(
        "--baselines", metavar="DIR", default=None,
        help="baseline directory (default: benchmarks/baselines/ of the "
             "repository this package runs from)",
    )
    p_doc.add_argument(
        "--metrics", metavar="FILE",
        help="also write the full metrics snapshot to FILE as JSON",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="chaos campaign: inject faults at every parallel level and "
             "verify the self-healing ladders recover",
    )
    p_chaos.add_argument(
        "--backend", choices=("serial", "thread", "process", "all"),
        default="serial",
        help="execution backend(s) to campaign against (default: serial)",
    )
    p_chaos.add_argument(
        "--workers", type=int, default=2,
        help="worker count for the thread/process backends",
    )
    p_chaos.add_argument(
        "--stages", nargs="+", metavar="STAGE", default=None,
        help="run only these named stages (default: all)",
    )
    p_chaos.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the campaign result JSON here (one file per backend "
             "when --backend all: a .<backend> suffix is inserted)",
    )
    p_chaos.add_argument(
        "-v", "--verbose", action="store_true",
        help="print each stage verdict as it completes",
    )

    p_bands = sub.add_parser("bands", help="bulk band summary of a material")
    p_bands.add_argument("material", help="registry name, e.g. Si-sp3s*")

    p_trace = sub.add_parser(
        "trace", help="summarise a trace JSON written by --trace"
    )
    p_trace.add_argument("file", help="Chrome-trace JSON file")

    p_top = sub.add_parser(
        "top",
        help="render run progress (bar, ETA, recent points) from a "
             "--events JSONL stream",
    )
    p_top.add_argument("file", help="telemetry events JSONL file")
    p_top.add_argument(
        "--follow", action="store_true",
        help="keep re-rendering every --interval seconds until the run "
             "emits run_finished",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period in seconds for --follow (default: 2)",
    )

    p_scale = sub.add_parser("scaling", help="performance-model projection")
    p_scale.add_argument("--cores", type=int, nargs="+",
                         default=[1024, 16384, 221130])
    p_scale.add_argument("--algorithm", choices=("wf", "rgf"), default="wf")
    return parser


def _load_built(spec_path: str):
    from .core import build_device
    from .io import load_spec

    return build_device(load_spec(spec_path))


def _backend_kwargs(args) -> dict:
    """TransportCalculation kwargs from the shared backend CLI flags."""
    kwargs = {
        "backend": getattr(args, "backend", None),
        "workers": getattr(args, "workers", None),
        "batch_energies": bool(getattr(args, "batch_energies", False)),
        "sigma_cache": True if getattr(args, "cache_sigma", False) else None,
        "precision": getattr(args, "precision", None),
    }
    if getattr(args, "zero_copy", False):
        # only an explicit flag overrides; otherwise the calculation
        # falls back to $REPRO_ZERO_COPY
        kwargs["zero_copy"] = True
    budget = getattr(args, "adaptive_energies", None)
    tol = getattr(args, "energy_tol", None)
    if budget is not None or tol is not None:
        # either flag opts into wave-scheduled adaptive quadrature;
        # without them energy_mode=None defers to $REPRO_ADAPTIVE
        kwargs["energy_mode"] = "adaptive"
        kwargs["max_energy_points"] = int(budget) if budget else 512
        if tol is not None:
            kwargs["adaptive_tol"] = float(tol)
    return kwargs


def _cmd_simulate(args) -> int:
    from .core import SelfConsistentSolver, TransportCalculation
    from .io import format_si, save_json

    built = _load_built(args.spec)
    transport = TransportCalculation(
        built, method=args.method, n_energy=args.n_energy,
        **_backend_kwargs(args),
    )
    scf = SelfConsistentSolver(built, transport)
    with _tracing(args.trace, "simulate") as tracer, \
            _metering(args.metrics) as registry, \
            _eventing(args.events, "simulate", spec=args.spec,
                      backend=args.backend,
                      precision=getattr(args, "precision", None)) as events:
        if events is not None:
            events.run_started(total=1, v_gate=args.vg, v_drain=args.vd)
        result = scf.run(args.vg, args.vd)
        if events is not None:
            events.point_done(
                v_gate=args.vg,
                v_drain=args.vd,
                current_a=result.transport.current_a,
                converged=result.converged,
            )
    print(f"device : {built.spec.name} ({built.n_atoms} atoms, "
          f"{built.device.n_slabs} slabs)")
    print(f"bias   : V_G = {args.vg} V, V_D = {args.vd} V")
    print(f"SCF    : converged={result.converged} "
          f"iterations={result.n_iterations}")
    print(f"current: {format_si(result.transport.current_a, 'A')}")
    perf = _finish_trace(tracer, args.trace)
    _finish_metrics(registry, args.metrics)
    if args.output:
        payload = {
            "v_gate": args.vg,
            "v_drain": args.vd,
            "current_a": result.transport.current_a,
            "converged": result.converged,
            "n_iterations": result.n_iterations,
            "residuals": result.residuals,
            "density_per_atom": result.transport.density_per_atom,
            "counted_flops": result.flops.total,
        }
        if perf is not None:
            payload["perf"] = perf
        save_json(payload, args.output)
        print(f"wrote  : {args.output}")
    return 0 if result.converged else 2


def _cmd_sweep(args) -> int:
    from .core import (
        IVSweep,
        SelfConsistentSolver,
        TransportCalculation,
        subthreshold_swing_mv_dec,
    )
    from .io import format_si, format_table, save_json
    from .resilience import FaultInjector, RetryPolicy

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    built = _load_built(args.spec)
    transport = TransportCalculation(
        built, method=args.method, n_energy=args.n_energy,
        **_backend_kwargs(args),
    )
    injector = None
    if args.inject_faults is not None:
        injector = FaultInjector(
            seed=args.inject_faults,
            rate=args.fault_rate,
            actions=("raise", "nan"),
            sites=("bias",),
        )
    sweep = IVSweep(
        SelfConsistentSolver(built, transport),
        retry=RetryPolicy(max_retries=args.max_retries),
        checkpoint=args.checkpoint,
        resume=args.resume,
        injector=injector,
    )
    vgs = np.linspace(args.vg_start, args.vg_stop, args.vg_points)
    with _tracing(args.trace, "sweep") as tracer, \
            _metering(args.metrics) as registry, \
            _eventing(args.events, "sweep", spec=args.spec,
                      precision=getattr(args, "precision", None),
                      backend=args.backend):
        # the sweep loop itself emits run_started/point_done/run_finished
        # through the installed writer (see IVSweep._sweep)
        curve = sweep.transfer_curve(vgs, v_drain=args.vd)
    rows = [
        (f"{p.v_gate:+.3f}", format_si(p.current_a, "A"),
         "yes" if p.converged else "NO",
         "+".join(p.recovery) if p.recovery else "-")
        for p in curve.points
    ]
    print(format_table(
        ["V_G (V)", "I_D", "converged", "recovery"], rows,
        title=f"{built.spec.name}: transfer sweep at V_D = {args.vd} V",
    ))
    try:
        ss = subthreshold_swing_mv_dec(curve.gate_voltages(), curve.currents())
        print(f"subthreshold swing (fit): {ss:.1f} mV/dec")
    except ValueError:
        pass
    print(f"on/off ratio: {curve.on_off_ratio():.3e}")
    print(curve.report.summary())
    if curve.degradation.total_events:
        print(curve.degradation.summary())
    perf = _finish_trace(tracer, args.trace)
    _finish_metrics(registry, args.metrics)
    if perf is None and curve.perf is not None:  # pragma: no cover
        perf = curve.perf.to_dict()
    if args.output:
        payload = {
            "v_drain": args.vd,
            "points": curve.points,
            "counted_flops": curve.flops.total,
            "resilience": curve.report.to_dict(),
            "degradation": curve.degradation.to_dict(),
        }
        if perf is not None:
            payload["perf"] = perf
        save_json(payload, args.output)
        print(f"wrote: {args.output}")
    return 0 if all(p.converged for p in curve.points) else 2


def _default_baseline_dir():
    """benchmarks/baselines/ of the source tree this package runs from."""
    from pathlib import Path

    return Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"


def _t3_probe():
    """Re-run the T3 RGF kernel probe; returns its flat measured metrics.

    Deliberately identical in shapes to the committed ``BENCH_t3_rgf``
    baseline (the ``grid_transport_system(n_x=16, n_yz=8)`` pass of
    ``benchmarks/bench_t3_kernels.py``): the instrumented flop counts are
    deterministic, so any drift against the baseline means the kernel's
    algorithm changed; timings only get warn-band scrutiny.
    """
    import numpy as np

    from .lattice import partition_into_slabs, rectangular_grid_device
    from .negf import contact_self_energy
    from .negf.rgf import assemble_system_blocks
    from .observability import Tracer, flat_metrics, use_tracer
    from .solvers import BlockTridiagLU
    from .tb import build_device_hamiltonian, single_band_material

    energy = 0.6
    mat = single_band_material(m_rel=0.3, spacing_nm=0.25)
    s = rectangular_grid_device(0.25, 16, 8, 8)
    dev = partition_into_slabs(s, 0.25, 0.25)
    pot = np.zeros(s.n_atoms)
    slab = dev.slab_of_atom()
    mid = dev.n_slabs // 2
    pot[(slab >= mid - 1) & (slab <= mid + 1)] = 0.1
    H = build_device_hamiltonian(dev, mat, potential=pot)
    sig_l = contact_self_energy(energy, H.diagonal[0], H.upper[0], side="left")
    sig_r = contact_self_energy(
        energy, H.diagonal[-1], H.upper[-1], side="right"
    )
    diag, upper, lower = assemble_system_blocks(
        H, energy, sig_l.sigma, sig_r.sigma
    )
    tracer = Tracer()
    with use_tracer(tracer):
        lu = BlockTridiagLU(diag, upper, lower)
        lu.solve_block_column(0)
        lu.solve_block_column(len(diag) - 1)
        lu.diagonal_of_inverse()
    return flat_metrics(tracer)


def _cmd_doctor(args) -> int:
    from .core import (
        DistributedTransport,
        IVSweep,
        SelfConsistentSolver,
        TransportCalculation,
    )
    from .errors import PhysicsInvariantError
    from .io import format_si, format_table
    from .observability import (
        InvariantMonitor,
        MetricsRegistry,
        check_against_baselines,
        use_metrics,
        use_monitor,
    )
    from .parallel import LEVEL_NAMES, CommTrace, TracedComm

    if args.events:
        # offline replay mode: no simulation, just the event-stream view
        return _events_replay(args.events)
    if not args.spec:
        print("doctor: a device spec is required unless --events is given",
              file=sys.stderr)
        return 2
    built = _load_built(args.spec)
    transport = TransportCalculation(
        built, method=args.method, n_energy=args.n_energy,
        **_backend_kwargs(args),
    )
    scf = SelfConsistentSolver(built, transport)
    registry = MetricsRegistry()
    monitor = InvariantMonitor(strict=args.strict)
    vgs = np.linspace(args.vg_start, args.vg_stop, args.vg_points)
    trace = CommTrace()
    print(f"doctor : {built.spec.name} ({built.n_atoms} atoms, "
          f"{built.device.n_slabs} slabs, method={args.method})")

    try:
        with use_metrics(registry), use_monitor(monitor):
            # 1. monitored mini-sweep (SCF convergence + kernel invariants)
            curve = IVSweep(scf).transfer_curve(vgs, v_drain=args.vd)
            # 2. modelled 4-level distributed solve for the comm matrix
            dist = DistributedTransport(
                transport, max_spatial=args.max_spatial
            )
            comm = TracedComm(1, 0, trace)
            dist.solve_bias(
                scf.atom_potential_ev(
                    scf.initial_potential(vgs[-1], args.vd)
                ),
                args.vd, comm, n_ranks=args.ranks,
            )
            organic_violations = monitor.n_violations
            # 3. fault drill: corrupt a density and verify the monitor
            #    flags it in metrics without killing the run (non-strict)
            if args.inject_faults is not None:
                from .resilience import FaultInjector
                from .resilience.faults import nan_like

                injector = FaultInjector(
                    seed=args.inject_faults, rate=1.0, actions=("nan",),
                    sites=("task",),
                )
                mode = injector.fire("task", ("doctor", "density-drill"))
                if mode == "nan":
                    broken = nan_like(np.ones(built.n_atoms))
                    try:
                        monitor.check_density(broken, drill="injected")
                        print("fault drill: injected NaN density recorded "
                              "as a violation; run continued (non-strict)")
                    except PhysicsInvariantError as exc:
                        print(f"fault drill: strict mode escalated as "
                              f"designed ({exc})")
    except PhysicsInvariantError as exc:
        print(f"doctor : FAIL (strict invariant escalation: {exc})")
        return 1

    snap = registry.snapshot()

    # --- SCF convergence tables ---------------------------------------
    residual_series = snap.with_prefix("series", "scf.residual_v")
    for key in sorted(residual_series):
        label = key[len("scf.residual_v"):] or "{}"
        poisson_key = "scf.poisson_iterations" + label
        poisson = dict(snap.series.get(poisson_key, ()))
        rows = [
            (step, f"{value:.3e}",
             str(int(poisson.get(step, 0))) if poisson else "-")
            for step, value in residual_series[key]
        ]
        print(format_table(
            ["iter", "max|dV| (V)", "Poisson iters"], rows,
            title=f"SCF convergence {label}",
        ))
    converged = int(snap.counter("scf.converged"))
    unconverged = int(snap.counter("scf.unconverged"))
    print(f"SCF    : {converged} bias point(s) converged, "
          f"{unconverged} not converged")

    # --- invariant verdicts -------------------------------------------
    checks = snap.total("invariant.checks")
    print(f"checks : {int(checks)} invariant evaluations")
    print(monitor.summary())

    # --- self-healing account -----------------------------------------
    from .resilience import get_sentinel

    sentinel = get_sentinel()
    print(f"health : sentinel mode={sentinel.mode}, "
          f"{sentinel.n_trips} lifetime trip(s)")
    print(curve.degradation.summary())

    # --- per-level communication matrix -------------------------------
    by_level = trace.by_level()
    level_rows = []
    for name in LEVEL_NAMES:
        row = by_level.get(name, {"bytes": 0, "messages": 0})
        group = snap.gauge("decomposition.group_size", 0.0, level=name)
        level_rows.append((
            name, int(group or 0), row["messages"],
            format_si(float(row["bytes"]), "B"),
        ))
    print(format_table(
        ["level", "group size", "messages", "bytes"], level_rows,
        title=f"modelled comm volume over {args.ranks} ranks "
              f"(paper's 4-level decomposition)",
    ))

    # --- self-energy cache probe --------------------------------------
    # Solve the same bias twice with a fresh cache: the first pass is all
    # misses, the second all hits, so the table doubles as a health check
    # on the cache keying.
    from .parallel import SelfEnergyCache

    # the probe pins the serial backend: a process pool's children would
    # fill their own cache copies and the table would misleadingly read 0
    cache = SelfEnergyCache()
    probe = TransportCalculation(
        built, method=args.method, n_energy=11,
        backend="serial",
        batch_energies=args.batch_energies, sigma_cache=cache,
    )
    pot_probe = scf.atom_potential_ev(
        scf.initial_potential(vgs[-1], args.vd)
    )
    probe_grid = probe.energy_grid(pot_probe, args.vd)
    probe.solve_bias(pot_probe, args.vd, energy_grid=probe_grid)
    cold = dict(cache.stats)
    probe.solve_bias(pot_probe, args.vd, energy_grid=probe_grid)
    warm = dict(cache.stats)
    print(format_table(
        ["pass", "hits", "misses", "evictions", "invalidations", "size"],
        [
            ("cold", cold["hits"], cold["misses"], cold["evictions"],
             cold["invalidations"], cold["size"]),
            ("warm", warm["hits"], warm["misses"], warm["evictions"],
             warm["invalidations"], warm["size"]),
        ],
        title="self-energy cache probe (same bias solved twice)",
    ))

    # --- zero-copy ipc probe ------------------------------------------
    # Re-solve the probe bias through the plan API with metrics on.  The
    # probe pins the serial backend, so the plan executes in local mode,
    # but the ipc.* accounting — plan publishes, plan bytes, and the
    # bytes a pickled task payload ships versus the plan-id payload —
    # is recorded either way.
    ipc_registry = MetricsRegistry()
    # batch_energies forces the chunked dispatch path even on the serial
    # backend — the per-point loop ships no payloads, so without it the
    # task-bytes comparison would have nothing to measure
    probe_zc = TransportCalculation(
        built, method=args.method, n_energy=11,
        backend="serial",
        batch_energies=True, zero_copy=True,
    )
    with use_metrics(ipc_registry):
        probe_zc.solve_bias(pot_probe, args.vd, energy_grid=probe_grid)
    ipc = ipc_registry.snapshot()
    ipc_flat = ipc.flat()
    pickled_b = ipc_flat.get("ipc.task_bytes{path=pickled}.mean", 0.0)
    zc_b = ipc_flat.get("ipc.task_bytes{path=zero_copy}.mean", 0.0)
    reduction = (pickled_b / zc_b) if zc_b else 0.0
    print(format_table(
        ["metric", "value"],
        [
            ("plans published", int(ipc.total("ipc.plans_published"))),
            ("plan bytes (mean)", format_si(
                ipc_flat.get("ipc.plan_bytes{kind=transport}.mean", 0.0),
                "B")),
            ("plan publish time (mean)", "%.3f ms" % (
                ipc_flat.get("ipc.plan_publish_s{kind=transport}.mean", 0.0)
                * 1e3)),
            ("task payload, pickled path", format_si(pickled_b, "B")),
            ("task payload, zero-copy path", format_si(zc_b, "B")),
            ("bytes shipped per task", f"{reduction:.1f}x smaller"),
        ],
        title="zero-copy ipc probe (plan accounting of the probe bias)",
    ))

    # --- mixed-precision probe ----------------------------------------
    # Re-solve the probe bias in precision="mixed" (RGF only) under a
    # fresh registry: the precision.* family — refinement iterations,
    # residual backward errors, certified points, FP64 escalations —
    # flows through the same telemetry merge-back as every other metric,
    # so the counters printed here are exact on any backend.
    if args.method == "rgf":
        prec_registry = MetricsRegistry()
        probe_mx = TransportCalculation(
            built, method="rgf", n_energy=11,
            backend="serial", batch_energies=True, precision="mixed",
        )
        with use_metrics(prec_registry):
            probe_mx.solve_bias(pot_probe, args.vd, energy_grid=probe_grid)
        prec = prec_registry.snapshot()
        prec_flat = prec.flat()
        print(format_table(
            ["metric", "value"],
            [
                ("points certified",
                 int(prec.total("precision.points_certified"))),
                ("fp64 escalations",
                 int(prec.total("precision.fp64_escalations"))),
                ("refine iterations (mean)", "%.2f" % prec_flat.get(
                    "precision.refine_iterations.mean", 0.0)),
                ("backward error (mean)", "%.2e" % prec_flat.get(
                    "precision.residual.mean", 0.0)),
                ("refine stalls",
                 int(prec.total("precision.refine_stalls"))),
            ],
            title="mixed-precision probe (same bias, complex64 + "
                  "fp64 refinement)",
        ))

    # --- perf-regression gate against the committed baseline ----------
    baseline_dir = args.baselines or _default_baseline_dir()
    report = check_against_baselines(
        _t3_probe(), baseline_dir, "t3_rgf", strict=args.strict
    )
    print(report.summary())

    if args.metrics:
        snap.write(args.metrics)
        print(f"metrics: {args.metrics}")

    if organic_violations:
        print(f"doctor : FAIL ({organic_violations} organic invariant "
              f"violation(s))")
        return 1
    if report.verdict == "fail":
        print("doctor : FAIL (performance baseline regression)")
        return 2
    print(f"doctor : OK (verdict {report.verdict}, "
          f"{monitor.n_violations - organic_violations} drill violation(s))")
    return 0


def _cmd_chaos(args) -> int:
    from .resilience.chaos import run_campaign, write_campaign_json

    backends = (
        ("serial", "thread", "process")
        if args.backend == "all"
        else (args.backend,)
    )
    all_passed = True
    for backend in backends:
        campaign = run_campaign(
            backend=backend,
            workers=args.workers,
            stages=args.stages,
            verbose=args.verbose,
        )
        print(campaign.summary())
        all_passed = all_passed and campaign.passed
        if args.output:
            path = args.output
            if len(backends) > 1:
                root, dot, ext = path.rpartition(".")
                path = (
                    f"{root}.{backend}{dot}{ext}" if dot else
                    f"{path}.{backend}"
                )
            write_campaign_json(campaign, path)
            print(f"wrote: {path}")
    return 0 if all_passed else 1


def _cmd_bands(args) -> int:
    from .tb import bulk_band_edges, get_material

    mat = get_material(args.material)
    if mat.cell is None:
        print(f"{mat.name}: single-band model, "
              f"Ec = {mat.band_edges.get('Ec', 0.0)} eV, "
              f"m* = {mat.band_edges.get('m_rel')}")
        return 0
    be = bulk_band_edges(mat, n_samples=81)
    kind = "direct" if be["direct"] else f"indirect ({be['cbm_direction']})"
    print(json.dumps(
        {
            "material": mat.name,
            "gap_ev": round(be["gap"], 4),
            "kind": kind,
            "Ev": round(be["Ev"], 4),
            "Ec": round(be["Ec"], 4),
        },
        indent=2,
    ))
    return 0


def _cmd_trace(args) -> int:
    from .observability import PerfReport

    with open(args.file) as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", [])
    other = doc.get("otherData", {})
    report = PerfReport(
        wall_time_s=float(other.get("wall_time_s", 0.0)),
        counted_flops=float(other.get("counted_flops", 0.0)),
        kernel_flops=other.get("kernel_flops", {}),
        phase_seconds=other.get("phase_seconds", {}),
        rank_seconds={
            int(k): v for k, v in other.get("rank_seconds", {}).items()
        },
        n_spans=int(other.get("n_spans", len(events))),
        n_tasks=int(other.get("n_tasks", 0)),
    )
    print(f"trace  : {args.file} ({len(events)} events)")
    print(report.summary())
    if report.phase_seconds:
        top = sorted(
            report.phase_seconds.items(), key=lambda kv: -kv[1]
        )[:6]
        print("phases : " + ", ".join(f"{k} {v:.3f}s" for k, v in top))
    if report.rank_seconds:
        busy = ", ".join(
            f"rank{k} {v:.3f}s" for k, v in sorted(report.rank_seconds.items())
        )
        print("ranks  : " + busy)
    return 0


def _cmd_top(args) -> int:
    """Render run progress from a --events JSONL stream.

    Reads only the event file — the run being watched can be in another
    process, another container, or already finished.  With ``--follow``
    it re-renders every ``--interval`` seconds until ``run_finished``
    appears (or the file never materialises and the user interrupts).
    """
    import os
    import time

    from .observability import (
        read_events,
        render_event_summary,
        summarize_events,
    )

    while True:
        if not os.path.exists(args.file):
            if not args.follow:
                print(f"top: no such events file: {args.file}",
                      file=sys.stderr)
                return 2
            time.sleep(args.interval)
            continue
        events = read_events(args.file)
        summary = summarize_events(events)
        print(render_event_summary(summary, now=time.time()))
        if not args.follow or summary.get("finished"):
            return 0
        time.sleep(args.interval)


def _cmd_scaling(args) -> int:
    from .io import format_si, format_table
    from .perf import JAGUAR_XT5, TransportWorkload, predict

    workload = TransportWorkload(
        n_slabs=130, block_size=4000, n_bias=15, n_k=21, n_energy=702,
        n_channels=30, algorithm=args.algorithm, n_scf_iterations=3,
    )
    rows = []
    for p in args.cores:
        r = predict(workload, JAGUAR_XT5, p)
        rows.append((
            p, "x".join(map(str, r.groups)),
            f"{r.walltime_s / 3600:.1f}",
            format_si(r.sustained_flops, "Flop/s"),
            f"{r.fraction_of_peak * 100:.0f}%",
        ))
    print(format_table(
        ["cores", "groups", "walltime (h)", "sustained", "of peak"], rows,
        title=f"modelled {args.algorithm.upper()} campaign on {JAGUAR_XT5.name}",
    ))
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if (getattr(args, "precision", None) not in (None, "fp64")
            and getattr(args, "method", "rgf") != "rgf"):
        print(
            f"--precision {args.precision} requires --method rgf "
            "(the WF kernel has no reduced-precision path)",
            file=sys.stderr,
        )
        return 2
    handler = {
        "simulate": _cmd_simulate,
        "sweep": _cmd_sweep,
        "doctor": _cmd_doctor,
        "bands": _cmd_bands,
        "scaling": _cmd_scaling,
        "trace": _cmd_trace,
        "chaos": _cmd_chaos,
        "top": _cmd_top,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
