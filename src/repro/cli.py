"""Command-line interface: device simulation from JSON specs.

Five subcommands mirror the workflows of the library:

* ``simulate`` — one self-consistent bias point of a device spec;
* ``sweep``    — a transfer (Id-Vg) sweep;
* ``bands``    — bulk band-structure summary of a material;
* ``scaling``  — the performance-model projection table;
* ``trace``    — summarise a trace JSON produced by ``--trace``.

``simulate`` and ``sweep`` accept ``--trace FILE``: the run executes under
an active :class:`repro.observability.Tracer`, writes a
``chrome://tracing``-loadable timeline to FILE, prints the measured
sustained-Flop/s report and embeds it in the result JSON (``"perf"`` key).

Everything reads/writes plain JSON so the CLI composes with shell
pipelines; ``python -m repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager

import numpy as np

__all__ = ["main", "build_parser"]


@contextmanager
def _tracing(trace_path, root_name):
    """Activate a fresh tracer with a root span (no-op when path is falsy)."""
    if not trace_path:
        yield None
        return
    from .observability import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer), tracer.span(root_name, category="phase"):
        yield tracer


def _finish_trace(tracer, trace_path):
    """Write the Chrome trace, print the PerfReport, return its dict."""
    if tracer is None:
        return None
    from .observability import PerfReport, write_chrome_trace

    write_chrome_trace(tracer, trace_path)
    report = PerfReport.from_tracer(tracer)
    print(report.summary())
    print(f"trace  : {trace_path} (load in chrome://tracing or Perfetto)")
    return report.to_dict()


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="atomistic nanoelectronic device simulator (OMEN reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="one self-consistent bias point")
    p_sim.add_argument("spec", help="device spec JSON file")
    p_sim.add_argument("--vg", type=float, default=0.0, help="gate voltage (V)")
    p_sim.add_argument("--vd", type=float, default=0.05, help="drain voltage (V)")
    p_sim.add_argument("--method", choices=("wf", "rgf"), default="wf")
    p_sim.add_argument("--n-energy", type=int, default=81)
    p_sim.add_argument("-o", "--output", help="write results JSON here")
    p_sim.add_argument(
        "--trace", metavar="FILE",
        help="measure the run: write a Chrome-trace JSON timeline to FILE "
             "and report measured sustained Flop/s",
    )

    p_sweep = sub.add_parser("sweep", help="transfer (Id-Vg) sweep")
    p_sweep.add_argument("spec")
    p_sweep.add_argument("--vg-start", type=float, default=-0.4)
    p_sweep.add_argument("--vg-stop", type=float, default=0.1)
    p_sweep.add_argument("--vg-points", type=int, default=6)
    p_sweep.add_argument("--vd", type=float, default=0.05)
    p_sweep.add_argument("--method", choices=("wf", "rgf"), default="wf")
    p_sweep.add_argument("--n-energy", type=int, default=81)
    p_sweep.add_argument("-o", "--output")
    p_sweep.add_argument(
        "--checkpoint", metavar="PATH",
        help="atomically checkpoint completed points to this npz file",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint, recomputing only missing points",
    )
    p_sweep.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per bias point for faulted solves",
    )
    p_sweep.add_argument(
        "--inject-faults", type=int, metavar="SEED", default=None,
        help="fault drill: deterministically inject faults with this seed",
    )
    p_sweep.add_argument(
        "--fault-rate", type=float, default=0.25,
        help="per-bias-point fault probability for --inject-faults",
    )
    p_sweep.add_argument(
        "--trace", metavar="FILE",
        help="measure the run: write a Chrome-trace JSON timeline to FILE "
             "and report measured sustained Flop/s",
    )

    p_bands = sub.add_parser("bands", help="bulk band summary of a material")
    p_bands.add_argument("material", help="registry name, e.g. Si-sp3s*")

    p_trace = sub.add_parser(
        "trace", help="summarise a trace JSON written by --trace"
    )
    p_trace.add_argument("file", help="Chrome-trace JSON file")

    p_scale = sub.add_parser("scaling", help="performance-model projection")
    p_scale.add_argument("--cores", type=int, nargs="+",
                         default=[1024, 16384, 221130])
    p_scale.add_argument("--algorithm", choices=("wf", "rgf"), default="wf")
    return parser


def _load_built(spec_path: str):
    from .core import build_device
    from .io import load_spec

    return build_device(load_spec(spec_path))


def _cmd_simulate(args) -> int:
    from .core import SelfConsistentSolver, TransportCalculation
    from .io import format_si, save_json

    built = _load_built(args.spec)
    transport = TransportCalculation(
        built, method=args.method, n_energy=args.n_energy
    )
    scf = SelfConsistentSolver(built, transport)
    with _tracing(args.trace, "simulate") as tracer:
        result = scf.run(args.vg, args.vd)
    print(f"device : {built.spec.name} ({built.n_atoms} atoms, "
          f"{built.device.n_slabs} slabs)")
    print(f"bias   : V_G = {args.vg} V, V_D = {args.vd} V")
    print(f"SCF    : converged={result.converged} "
          f"iterations={result.n_iterations}")
    print(f"current: {format_si(result.transport.current_a, 'A')}")
    perf = _finish_trace(tracer, args.trace)
    if args.output:
        payload = {
            "v_gate": args.vg,
            "v_drain": args.vd,
            "current_a": result.transport.current_a,
            "converged": result.converged,
            "n_iterations": result.n_iterations,
            "residuals": result.residuals,
            "density_per_atom": result.transport.density_per_atom,
            "counted_flops": result.flops.total,
        }
        if perf is not None:
            payload["perf"] = perf
        save_json(payload, args.output)
        print(f"wrote  : {args.output}")
    return 0 if result.converged else 2


def _cmd_sweep(args) -> int:
    from .core import (
        IVSweep,
        SelfConsistentSolver,
        TransportCalculation,
        subthreshold_swing_mv_dec,
    )
    from .io import format_si, format_table, save_json
    from .resilience import FaultInjector, RetryPolicy

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    built = _load_built(args.spec)
    transport = TransportCalculation(
        built, method=args.method, n_energy=args.n_energy
    )
    injector = None
    if args.inject_faults is not None:
        injector = FaultInjector(
            seed=args.inject_faults,
            rate=args.fault_rate,
            actions=("raise", "nan"),
            sites=("bias",),
        )
    sweep = IVSweep(
        SelfConsistentSolver(built, transport),
        retry=RetryPolicy(max_retries=args.max_retries),
        checkpoint=args.checkpoint,
        resume=args.resume,
        injector=injector,
    )
    vgs = np.linspace(args.vg_start, args.vg_stop, args.vg_points)
    with _tracing(args.trace, "sweep") as tracer:
        curve = sweep.transfer_curve(vgs, v_drain=args.vd)
    rows = [
        (f"{p.v_gate:+.3f}", format_si(p.current_a, "A"),
         "yes" if p.converged else "NO",
         "+".join(p.recovery) if p.recovery else "-")
        for p in curve.points
    ]
    print(format_table(
        ["V_G (V)", "I_D", "converged", "recovery"], rows,
        title=f"{built.spec.name}: transfer sweep at V_D = {args.vd} V",
    ))
    try:
        ss = subthreshold_swing_mv_dec(curve.gate_voltages(), curve.currents())
        print(f"subthreshold swing (fit): {ss:.1f} mV/dec")
    except ValueError:
        pass
    print(f"on/off ratio: {curve.on_off_ratio():.3e}")
    print(curve.report.summary())
    perf = _finish_trace(tracer, args.trace)
    if perf is None and curve.perf is not None:  # pragma: no cover
        perf = curve.perf.to_dict()
    if args.output:
        payload = {
            "v_drain": args.vd,
            "points": curve.points,
            "counted_flops": curve.flops.total,
            "resilience": curve.report.to_dict(),
        }
        if perf is not None:
            payload["perf"] = perf
        save_json(payload, args.output)
        print(f"wrote: {args.output}")
    return 0 if all(p.converged for p in curve.points) else 2


def _cmd_bands(args) -> int:
    from .tb import bulk_band_edges, get_material

    mat = get_material(args.material)
    if mat.cell is None:
        print(f"{mat.name}: single-band model, "
              f"Ec = {mat.band_edges.get('Ec', 0.0)} eV, "
              f"m* = {mat.band_edges.get('m_rel')}")
        return 0
    be = bulk_band_edges(mat, n_samples=81)
    kind = "direct" if be["direct"] else f"indirect ({be['cbm_direction']})"
    print(json.dumps(
        {
            "material": mat.name,
            "gap_ev": round(be["gap"], 4),
            "kind": kind,
            "Ev": round(be["Ev"], 4),
            "Ec": round(be["Ec"], 4),
        },
        indent=2,
    ))
    return 0


def _cmd_trace(args) -> int:
    from .observability import PerfReport

    with open(args.file) as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", [])
    other = doc.get("otherData", {})
    report = PerfReport(
        wall_time_s=float(other.get("wall_time_s", 0.0)),
        counted_flops=float(other.get("counted_flops", 0.0)),
        kernel_flops=other.get("kernel_flops", {}),
        phase_seconds=other.get("phase_seconds", {}),
        rank_seconds={
            int(k): v for k, v in other.get("rank_seconds", {}).items()
        },
        n_spans=int(other.get("n_spans", len(events))),
        n_tasks=int(other.get("n_tasks", 0)),
    )
    print(f"trace  : {args.file} ({len(events)} events)")
    print(report.summary())
    if report.phase_seconds:
        top = sorted(
            report.phase_seconds.items(), key=lambda kv: -kv[1]
        )[:6]
        print("phases : " + ", ".join(f"{k} {v:.3f}s" for k, v in top))
    if report.rank_seconds:
        busy = ", ".join(
            f"rank{k} {v:.3f}s" for k, v in sorted(report.rank_seconds.items())
        )
        print("ranks  : " + busy)
    return 0


def _cmd_scaling(args) -> int:
    from .io import format_si, format_table
    from .perf import JAGUAR_XT5, TransportWorkload, predict

    workload = TransportWorkload(
        n_slabs=130, block_size=4000, n_bias=15, n_k=21, n_energy=702,
        n_channels=30, algorithm=args.algorithm, n_scf_iterations=3,
    )
    rows = []
    for p in args.cores:
        r = predict(workload, JAGUAR_XT5, p)
        rows.append((
            p, "x".join(map(str, r.groups)),
            f"{r.walltime_s / 3600:.1f}",
            format_si(r.sustained_flops, "Flop/s"),
            f"{r.fraction_of_peak * 100:.0f}%",
        ))
    print(format_table(
        ["cores", "groups", "walltime (h)", "sustained", "of peak"], rows,
        title=f"modelled {args.algorithm.upper()} campaign on {JAGUAR_XT5.name}",
    ))
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "simulate": _cmd_simulate,
        "sweep": _cmd_sweep,
        "bands": _cmd_bands,
        "scaling": _cmd_scaling,
        "trace": _cmd_trace,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
