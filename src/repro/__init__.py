"""repro — atomistic nanoelectronic device simulation at (simulated) petascale.

A from-scratch Python reproduction of the OMEN quantum-transport simulator
described in "Atomistic nanoelectronic device engineering with sustained
performances up to 1.44 PFlop/s" (SC 2011): empirical tight-binding devices,
NEGF/recursive-Green's-function and wave-function transport kernels,
self-consistent Poisson electrostatics, and a four-level parallel
decomposition with a calibrated performance model of the petascale machine.

Subpackages
-----------
physics   constants, Fermi statistics, quadrature grids
lattice   crystals, device geometry, neighbour tables, slabs
tb        Slater-Koster Hamiltonians, materials, band structure
solvers   block-tridiagonal and domain-decomposition linear algebra
negf      surface Green's functions, RGF, transmission, observables
wf        wave-function (QTBM) scattering-state transport
poisson   finite-volume nonlinear electrostatics
parallel  communicator abstraction and the 4-level work scheduler
perf      flop accounting and the simulated-machine performance model
resilience fault injection, retry/rescue ladders, checkpoint/restart
core      device specs, transport facade, SCF driver, I-V engine
io        device spec and result (de)serialisation
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    core,
    io,
    lattice,
    negf,
    parallel,
    perf,
    phonons,
    physics,
    poisson,
    resilience,
    solvers,
    tb,
    wf,
)

__all__ = [
    "core",
    "io",
    "lattice",
    "negf",
    "parallel",
    "perf",
    "phonons",
    "physics",
    "poisson",
    "resilience",
    "solvers",
    "tb",
    "wf",
    "__version__",
]
