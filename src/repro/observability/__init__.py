"""Measured-performance observability: tracing, flop accounting, reports.

The paper's headline number is a *measurement* — sustained Flop/s =
analytically counted flops / wall time (the Gordon Bell convention).
This package is the measurement substrate of the reproduction:

* :class:`Tracer` / :func:`trace_span` — hierarchical, exception-safe,
  thread-safe phase spans with wall-time and counted-flop attribution;
  the default active tracer is a no-op :class:`NullTracer`, so
  uninstrumented runs pay ~zero cost.
* :func:`add_flops` — the hook the instrumented kernels
  (:class:`repro.solvers.BlockTridiagLU`, :func:`repro.negf.sancho_rubio`,
  :class:`repro.wf.WFSolver`, ...) report measured flops through.
* :class:`PerfReport` — the sustained-Flop/s ledger of one traced run,
  attached to :class:`repro.core.IVCurve` and embedded in CLI result JSON.
* :func:`chrome_trace` / :func:`write_chrome_trace` /
  :func:`flat_metrics` — export layers (``chrome://tracing``-loadable
  timeline JSON and a flat metrics dict for benchmark baselines).
* :func:`validate_flops` — asserts the analytic formulas of
  :mod:`repro.perf.flops` match the instrumented counts exactly.
* :class:`MetricsRegistry` / :class:`MetricsSnapshot` — process-wide
  counters, gauges, log-linear histograms and convergence series with
  labels, snapshot/merge/diff and JSON export (``--metrics FILE``);
  the default is a zero-overhead :class:`NullMetrics`.
* :class:`InvariantMonitor` — continuous physics monitors (current
  conservation, transmission bounds, density non-negativity, charge
  neutrality, Γ Hermiticity) evaluated inside the kernels; violations
  are recorded into the metrics registry, or raised as
  :class:`repro.errors.PhysicsInvariantError` in strict mode.
* :func:`compare_metrics` / :func:`check_against_baselines` — the
  perf-regression gate over ``benchmarks/baselines/BENCH_*.json`` with
  per-metric tolerance bands and pass/warn/fail verdicts.
* :mod:`~repro.observability.telemetry` — cross-process telemetry:
  :func:`capture_telemetry` / :func:`merge_delta` record worker-side
  tracer/metrics activity and fold it back into the parent (exact
  counters on every backend, unified whole-run Chrome traces), and
  :class:`TelemetryWriter` streams typed JSONL progress events
  (``--events FILE``) that ``repro top`` renders live.

Typical use::

    from repro.observability import Tracer, use_tracer, PerfReport

    tracer = Tracer()
    with use_tracer(tracer), tracer.span("sweep"):
        curve = IVSweep(scf).transfer_curve(...)
    print(PerfReport.from_tracer(tracer).summary())
"""

from .export import chrome_trace, flat_metrics, write_chrome_trace
from .invariants import (
    NULL_MONITOR,
    InvariantMonitor,
    InvariantViolation,
    NullInvariantMonitor,
    get_monitor,
    set_monitor,
    use_monitor,
)
from .metrics import (
    NULL_METRICS,
    LogLinearHistogram,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetrics,
    get_metrics,
    metric_key,
    set_metrics,
    use_metrics,
)
from .regression import (
    DEFAULT_BANDS,
    MetricVerdict,
    RegressionReport,
    ToleranceBand,
    check_against_baselines,
    compare_metrics,
    load_baseline,
    load_baselines,
)
from .report import PerfReport
from .telemetry import (
    EVENT_TYPES,
    NULL_EVENTS,
    NullEventWriter,
    TelemetryDelta,
    TelemetrySidecar,
    TelemetryWriter,
    capture_telemetry,
    get_events,
    merge_delta,
    read_events,
    render_event_summary,
    set_events,
    summarize_events,
    use_events,
    validate_events,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    add_flops,
    get_tracer,
    set_tracer,
    trace_span,
    use_tracer,
)
from .validate import (
    FlopValidation,
    validate_flops,
    validate_rgf_flops,
    validate_sancho_rubio_flops,
    validate_wf_flops,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "trace_span",
    "add_flops",
    "PerfReport",
    "chrome_trace",
    "write_chrome_trace",
    "flat_metrics",
    "FlopValidation",
    "validate_flops",
    "validate_rgf_flops",
    "validate_wf_flops",
    "validate_sancho_rubio_flops",
    # metrics registry
    "MetricsRegistry",
    "MetricsSnapshot",
    "LogLinearHistogram",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "metric_key",
    # physics invariants
    "InvariantMonitor",
    "InvariantViolation",
    "NullInvariantMonitor",
    "NULL_MONITOR",
    "get_monitor",
    "set_monitor",
    "use_monitor",
    # cross-process telemetry and live event stream
    "TelemetryDelta",
    "TelemetrySidecar",
    "TelemetryWriter",
    "NullEventWriter",
    "NULL_EVENTS",
    "EVENT_TYPES",
    "capture_telemetry",
    "merge_delta",
    "get_events",
    "set_events",
    "use_events",
    "read_events",
    "validate_events",
    "summarize_events",
    "render_event_summary",
    # regression gate
    "ToleranceBand",
    "MetricVerdict",
    "RegressionReport",
    "DEFAULT_BANDS",
    "compare_metrics",
    "check_against_baselines",
    "load_baseline",
    "load_baselines",
]
