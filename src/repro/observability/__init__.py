"""Measured-performance observability: tracing, flop accounting, reports.

The paper's headline number is a *measurement* — sustained Flop/s =
analytically counted flops / wall time (the Gordon Bell convention).
This package is the measurement substrate of the reproduction:

* :class:`Tracer` / :func:`trace_span` — hierarchical, exception-safe,
  thread-safe phase spans with wall-time and counted-flop attribution;
  the default active tracer is a no-op :class:`NullTracer`, so
  uninstrumented runs pay ~zero cost.
* :func:`add_flops` — the hook the instrumented kernels
  (:class:`repro.solvers.BlockTridiagLU`, :func:`repro.negf.sancho_rubio`,
  :class:`repro.wf.WFSolver`, ...) report measured flops through.
* :class:`PerfReport` — the sustained-Flop/s ledger of one traced run,
  attached to :class:`repro.core.IVCurve` and embedded in CLI result JSON.
* :func:`chrome_trace` / :func:`write_chrome_trace` /
  :func:`flat_metrics` — export layers (``chrome://tracing``-loadable
  timeline JSON and a flat metrics dict for benchmark baselines).
* :func:`validate_flops` — asserts the analytic formulas of
  :mod:`repro.perf.flops` match the instrumented counts exactly.

Typical use::

    from repro.observability import Tracer, use_tracer, PerfReport

    tracer = Tracer()
    with use_tracer(tracer), tracer.span("sweep"):
        curve = IVSweep(scf).transfer_curve(...)
    print(PerfReport.from_tracer(tracer).summary())
"""

from .export import chrome_trace, flat_metrics, write_chrome_trace
from .report import PerfReport
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    add_flops,
    get_tracer,
    set_tracer,
    trace_span,
    use_tracer,
)
from .validate import (
    FlopValidation,
    validate_flops,
    validate_rgf_flops,
    validate_sancho_rubio_flops,
    validate_wf_flops,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "trace_span",
    "add_flops",
    "PerfReport",
    "chrome_trace",
    "write_chrome_trace",
    "flat_metrics",
    "FlopValidation",
    "validate_flops",
    "validate_rgf_flops",
    "validate_wf_flops",
    "validate_sancho_rubio_flops",
]
