"""Sustained-Flop/s run reports from measured traces.

:class:`PerfReport` is the measured sibling of
:class:`repro.resilience.ResilienceReport` and of the *predicted*
:class:`repro.perf.ModelReport`: where the model computes sustained
Flop/s from analytic counts and a machine model, the PerfReport divides
the flops the instrumented kernels actually reported by the wall time the
tracer actually observed — the Gordon Bell convention applied to a real
run.  It is attached to :class:`repro.core.IVCurve` whenever a tracer is
active and embedded in the CLI result JSON, so every optimisation PR can
be judged against a measured baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PerfReport"]


@dataclass
class PerfReport:
    """Measured performance ledger of one traced run.

    Attributes
    ----------
    wall_time_s : float
        Wall time of the run (s) under the chosen accounting (by default
        the extent of the completed spans).
    counted_flops : float
        Total measured flops reported by the instrumented kernels.
    kernel_flops : dict
        Per-kernel breakdown, e.g. ``{"block_lu.factor": ...,
        "surface_gf.sancho": ...}``.
    phase_seconds : dict
        Total wall time per span name (nested spans each count once).
    rank_seconds : dict
        Busy time per rank (spans carrying a ``rank`` attribute).
    n_spans, n_tasks : int
        Completed spans overall / task-category spans (the per-(k, E) or
        per-bias work items of the timelines).

    Example
    -------
    >>> from repro.observability import PerfReport, Tracer, use_tracer
    >>> t = Tracer()
    >>> with use_tracer(t), t.span("sweep"):
    ...     t.add_flops("gemm", 1e6)
    >>> report = PerfReport.from_tracer(t, wall_time_s=0.5)
    >>> report.sustained_flops
    2000000.0
    >>> report.to_dict()["counted_flops"]
    1000000.0
    """

    wall_time_s: float
    counted_flops: float
    kernel_flops: dict = field(default_factory=dict)
    phase_seconds: dict = field(default_factory=dict)
    rank_seconds: dict = field(default_factory=dict)
    n_spans: int = 0
    n_tasks: int = 0

    # ------------------------------------------------------------------
    @property
    def sustained_flops(self) -> float:
        """Measured sustained performance: counted flops / wall time."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.counted_flops / self.wall_time_s

    @classmethod
    def from_tracer(cls, tracer, wall_time_s: float | None = None) -> "PerfReport":
        """Aggregate a :class:`repro.observability.Tracer` into a report.

        ``wall_time_s`` overrides the wall-time accounting; the default is
        the extent of the completed spans (falling back to the tracer's
        lifetime when no span was recorded).
        """
        if wall_time_s is None:
            wall_time_s = tracer.span_extent_s() or tracer.elapsed()
        counter = getattr(tracer, "counter", None)
        kernel_flops = dict(counter.counts) if counter is not None else {}
        return cls(
            wall_time_s=float(wall_time_s),
            counted_flops=float(sum(kernel_flops.values())),
            kernel_flops=kernel_flops,
            phase_seconds=tracer.phase_seconds(),
            rank_seconds=tracer.rank_seconds(),
            n_spans=len(tracer.spans),
            n_tasks=tracer.task_count(),
        )

    def merge(self, other: "PerfReport") -> None:
        """Fold another report into this one (times add, flops add)."""
        self.wall_time_s += other.wall_time_s
        self.counted_flops += other.counted_flops
        for k, v in other.kernel_flops.items():
            self.kernel_flops[k] = self.kernel_flops.get(k, 0.0) + v
        for k, v in other.phase_seconds.items():
            self.phase_seconds[k] = self.phase_seconds.get(k, 0.0) + v
        for k, v in other.rank_seconds.items():
            self.rank_seconds[k] = self.rank_seconds.get(k, 0.0) + v
        self.n_spans += other.n_spans
        self.n_tasks += other.n_tasks

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible view (embedded in the CLI result files)."""
        return {
            "wall_time_s": self.wall_time_s,
            "counted_flops": self.counted_flops,
            "sustained_flops": self.sustained_flops,
            "kernel_flops": dict(self.kernel_flops),
            "phase_seconds": dict(self.phase_seconds),
            "rank_seconds": {str(k): v for k, v in self.rank_seconds.items()},
            "n_spans": self.n_spans,
            "n_tasks": self.n_tasks,
        }

    def summary(self) -> str:
        """One-paragraph human-readable digest for the CLI.

        Example
        -------
        >>> 'sustained' in PerfReport(1.0, 2.0e9).summary()
        True
        """
        from ..io.tables import format_si

        lines = [
            "performance: "
            f"{format_si(self.counted_flops, 'Flop')} counted in "
            f"{self.wall_time_s:.3f} s -> "
            f"{format_si(self.sustained_flops, 'Flop/s')} sustained "
            f"({self.n_spans} spans, {self.n_tasks} tasks)"
        ]
        if self.kernel_flops:
            total = self.counted_flops or 1.0
            top = sorted(
                self.kernel_flops.items(), key=lambda kv: -kv[1]
            )[:4]
            lines.append(
                "kernels: "
                + ", ".join(
                    f"{name} {v / total:.0%}" for name, v in top
                )
            )
        return "\n".join(lines)
