"""Continuous physics-invariant monitors evaluated during runs.

A transport code can go numerically wrong while still returning finite
numbers — a transmission above the channel count, a slab interface that
leaks current, a Γ matrix that stopped being Hermitian.  At 221k cores
nobody eyeballs T(E) curves, so the production answer is *continuous
monitoring*: cheap invariant checks evaluated inside the kernels on every
solve, recording violations into the metrics registry
(:mod:`repro.observability.metrics`) instead of crashing.

The monitored invariants (all from the ballistic NEGF/QTBM theory):

* **current conservation** — the left-injected probability current is
  equal across every slab interface (WF kernel);
* **transmission bounds** — 0 <= T(E) <= n_open_channels (both kernels);
* **density non-negativity** — spectral/carrier densities are >= 0 and
  finite everywhere;
* **charge neutrality** — the integrated electron count of a converged
  SCF point stays within a (loose) factor of the donor count;
* **Γ anti-Hermiticity** — the broadening Γ = i(Σ - Σ†) built from the
  anti-Hermitian part of the contact self-energy must itself be Hermitian
  with non-negative trace (causality of the retarded GF).

The default active monitor is a disabled :class:`NullInvariantMonitor`
(zero overhead, mirroring NullTracer/NullMetrics).  An enabled
:class:`InvariantMonitor` records each violation as a
``invariant.violations{invariant=...}`` counter plus a local
:class:`InvariantViolation` record; ``strict=True`` escalates every
violation to :class:`repro.errors.PhysicsInvariantError` — the mode CI
uses to turn silent physics rot into red builds.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..errors import PhysicsInvariantError
from .metrics import get_metrics, metric_key

__all__ = [
    "InvariantViolation",
    "InvariantMonitor",
    "NullInvariantMonitor",
    "NULL_MONITOR",
    "get_monitor",
    "set_monitor",
    "use_monitor",
]


@dataclass(frozen=True)
class InvariantViolation:
    """One recorded invariant violation."""

    invariant: str
    value: float
    threshold: float
    context: tuple = ()

    def describe(self) -> str:
        """One-line human-readable form."""
        ctx = ", ".join(f"{k}={v}" for k, v in self.context)
        where = f" ({ctx})" if ctx else ""
        return (
            f"{self.invariant}: defect {self.value:.3e} exceeds "
            f"tolerance {self.threshold:.3e}{where}"
        )


class InvariantMonitor:
    """Evaluates physics invariants and accounts their violations.

    Parameters
    ----------
    strict : bool
        True raises :class:`repro.errors.PhysicsInvariantError` on the
        first violation; False (default) records and continues.
    tol_current : float
        Allowed relative spread of the interface currents (loose enough
        that eta-broadening absorption along the device does not flag).
    tol_transmission : float
        Allowed excursion of T(E) outside [0, n_modes].
    tol_density : float
        Most negative density value tolerated (absolute).
    tol_gamma : float
        Allowed relative Hermiticity defect of Γ.
    tol_neutrality : float
        Allowed |log(n_electrons / n_donors)| of a converged SCF point —
        loose by design: exact neutrality only holds in equilibrium and a
        strong gate bias legitimately moves the integrated electron count
        by over a decade, so the default (ln 100 ≈ two decades) flags
        breakdowns, not bias.

    Example
    -------
    >>> m = InvariantMonitor()
    >>> m.check_transmission(2.5, n_modes=2)
    False
    >>> m.violations[0].invariant
    'transmission_bounds'
    """

    enabled = True

    def __init__(
        self,
        strict: bool = False,
        tol_current: float = 1e-5,
        tol_transmission: float = 1e-8,
        tol_density: float = 1e-12,
        tol_gamma: float = 1e-8,
        tol_neutrality: float = 4.605,
    ):
        self.strict = strict
        self.tol_current = tol_current
        self.tol_transmission = tol_transmission
        self.tol_density = tol_density
        self.tol_gamma = tol_gamma
        self.tol_neutrality = tol_neutrality
        self.violations: list[InvariantViolation] = []
        self._lock = threading.Lock()
        # the pass-path counter runs on every solve of every energy, so
        # its flattened keys are assembled once instead of per check
        self._check_keys = {
            inv: metric_key("invariant.checks", {"invariant": inv})
            for inv in (
                "current_conservation", "transmission_bounds",
                "density_nonnegative", "charge_neutrality",
                "gamma_antihermitian", "finite_output",
            )
        }

    # ------------------------------------------------------------------
    def _violate(self, invariant: str, value: float, threshold: float,
                 **context) -> bool:
        violation = InvariantViolation(
            invariant, float(value), float(threshold),
            tuple(sorted(context.items())),
        )
        with self._lock:
            self.violations.append(violation)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("invariant.violations", 1.0, invariant=invariant)
            metrics.gauge("invariant.last_defect", float(value),
                          invariant=invariant)
        if self.strict:
            raise PhysicsInvariantError(
                violation.describe(),
                invariant=invariant,
                value=float(value),
                threshold=float(threshold),
            )
        return False

    def _pass(self, invariant: str) -> bool:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc_key(self._check_keys[invariant])
        return True

    @property
    def n_violations(self) -> int:
        """Number of violations recorded so far."""
        return len(self.violations)

    def summary(self) -> str:
        """Digest for the doctor CLI: 'ok' or the violation list."""
        if not self.violations:
            return "invariants: all checks passed"
        lines = [f"invariants: {len(self.violations)} violation(s)"]
        lines += [f"  - {v.describe()}" for v in self.violations[:8]]
        if len(self.violations) > 8:
            lines.append(f"  ... and {len(self.violations) - 8} more")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def check_current_conservation(self, interface_currents,
                                   transmission: float, **context) -> bool:
        """Interface currents equal (= T) across every slab boundary."""
        currents = np.asarray(interface_currents, dtype=float)
        if currents.size == 0:
            return self._pass("current_conservation")
        scale = max(abs(float(transmission)), 1.0)
        spread = float(currents.max() - currents.min()) / scale
        # "not <=" instead of ">" so a NaN spread (non-finite currents)
        # lands in the violation branch without a separate isfinite scan
        if not spread <= self.tol_current:
            if not math.isfinite(spread):
                spread = float("inf")
            return self._violate(
                "current_conservation", spread, self.tol_current, **context
            )
        return self._pass("current_conservation")

    def check_transmission(self, transmission: float, n_modes: int,
                           **context) -> bool:
        """0 <= T(E) <= number of open modes."""
        t = float(transmission)
        if not math.isfinite(t):
            return self._violate(
                "transmission_bounds", float("inf"),
                self.tol_transmission, **context,
            )
        defect = max(-t, t - float(n_modes))
        if defect > self.tol_transmission:
            return self._violate(
                "transmission_bounds", defect, self.tol_transmission,
                **context,
            )
        return self._pass("transmission_bounds")

    def check_density(self, density, **context) -> bool:
        """Carrier/spectral density finite and non-negative."""
        d = np.asarray(density)
        if d.size == 0:
            return self._pass("density_nonnegative")
        low = float(d.min())
        # a NaN (or +inf total) fails the sum's finiteness; the min alone
        # would let +inf entries pass, and NaN fails "not >=" anyway
        if not low >= -self.tol_density or not math.isfinite(float(d.sum())):
            defect = -low if math.isfinite(low) and low < 0 else float("inf")
            return self._violate(
                "density_nonnegative", defect, self.tol_density, **context
            )
        return self._pass("density_nonnegative")

    def check_charge_neutrality(self, n_electrons: float, n_donors: float,
                                **context) -> bool:
        """Integrated electrons within two decades of the donor count."""
        metrics = get_metrics()
        if not math.isfinite(float(n_electrons)):
            return self._violate(
                "charge_neutrality", float("inf"), self.tol_neutrality,
                **context,
            )
        if n_donors <= 0.0:
            return self._pass("charge_neutrality")
        residual = abs(
            float(np.log(max(float(n_electrons), 1e-300) / float(n_donors)))
        )
        if metrics.enabled:
            metrics.gauge("scf.neutrality_log_residual", residual)
        if residual > self.tol_neutrality:
            return self._violate(
                "charge_neutrality", residual, self.tol_neutrality, **context
            )
        return self._pass("charge_neutrality")

    def check_gamma(self, gamma, **context) -> bool:
        """Γ from the anti-Hermitian part of Σ: Hermitian, trace >= 0."""
        g = np.asarray(gamma)
        if g.size == 0:
            return self._pass("gamma_antihermitian")
        ga = abs(g)
        scale = float(ga.max())
        if not math.isfinite(scale):  # scalar check; NaN/inf entries propagate
            return self._violate(
                "gamma_antihermitian", float("inf"), self.tol_gamma,
                **context,
            )
        scale = max(scale, 1e-300)
        defect = float(abs(g - g.conj().T).max()) / scale
        trace = float(g.trace().real)
        if trace < -self.tol_gamma * scale * g.shape[0]:
            defect = max(defect, -trace / (scale * g.shape[0]))
        if defect > self.tol_gamma:
            return self._violate(
                "gamma_antihermitian", defect, self.tol_gamma, **context
            )
        return self._pass("gamma_antihermitian")

    def check_finite(self, arrays, kernel: str = "", **context) -> bool:
        """Every array of a kernel's output is finite (breakdown guard)."""
        for a in arrays:
            arr = np.asarray(a)
            if arr.dtype.kind in "fc" and not np.all(np.isfinite(arr)):
                return self._violate(
                    "finite_output", float("inf"), 0.0, kernel=kernel,
                    **context,
                )
        return self._pass("finite_output")


class NullInvariantMonitor:
    """Disabled monitor: every check is a no-op returning True.

    Shared as :data:`NULL_MONITOR`; ``enabled`` is False so kernels skip
    the checking arithmetic entirely when monitoring is off.
    """

    enabled = False
    strict = False
    violations: tuple = ()
    n_violations = 0

    def summary(self) -> str:
        return "invariants: monitoring disabled"

    def check_current_conservation(self, interface_currents, transmission,
                                   **context):
        return True

    def check_transmission(self, transmission, n_modes, **context):
        return True

    def check_density(self, density, **context):
        return True

    def check_charge_neutrality(self, n_electrons, n_donors, **context):
        return True

    def check_gamma(self, gamma, **context):
        return True

    def check_finite(self, arrays, kernel="", **context):
        return True


#: The process-wide disabled monitor (default).
NULL_MONITOR = NullInvariantMonitor()

_ACTIVE = NULL_MONITOR
_ACTIVE_LOCK = threading.Lock()


def get_monitor():
    """The active invariant monitor (disabled unless one is installed)."""
    return _ACTIVE


def set_monitor(monitor):
    """Install ``monitor`` as active; returns the previous one.

    Pass None to restore the disabled default.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = monitor if monitor is not None else NULL_MONITOR
    return previous


@contextmanager
def use_monitor(monitor):
    """Scope an active monitor: ``with use_monitor(InvariantMonitor()):``.

    Restores the previously active monitor on exit, exception or not.
    """
    previous = set_monitor(monitor)
    try:
        yield monitor
    finally:
        set_monitor(previous)
