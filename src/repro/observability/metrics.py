"""Process-wide metrics: counters, gauges, log-linear histograms, series.

Where :mod:`repro.observability.tracer` answers "where did the time go",
this module answers "how did the run behave": SCF residual series,
surface-GF decimation iteration histograms, per-level communication
volumes, invariant-violation counters.  Four instrument kinds:

* **counter** — monotonically increasing total (``inc``): task counts,
  bytes moved, invariant violations;
* **gauge** — last-written value (``gauge``): final SCF residual,
  charge-neutrality defect of the latest bias point;
* **histogram** — log-linear distribution (``observe``): decimation
  iteration counts, per-task wall times.  Buckets are octaves subdivided
  linearly (HDR-style), so the span from 1 µs to 1 h needs ~100 buckets;
* **series** — append-only (step, value) list (``record``): the
  per-iteration convergence telemetry that ``repro doctor`` prints.

All instruments accept ``**labels``; a labelled instrument is keyed
``name{k=v,...}`` with sorted label keys, the flattening used by the JSON
export and the regression checker.

Well-known namespaces (recorded by the rest of the stack, listed here so
dashboards have one place to look):

* ``ipc.*`` — zero-copy execution plans (:mod:`repro.parallel.plan`):
  ``ipc.plans_published{mode,kind}`` / ``ipc.plans_unlinked`` /
  ``ipc.plan_leaks`` (counters), ``ipc.plan_bytes{kind}`` /
  ``ipc.plan_publish_s{kind}`` / ``ipc.plan_attach_s`` (histograms),
  ``ipc.plan_attaches`` (counter), ``ipc.arena_bytes`` (histogram) and
  ``ipc.arena_occupancy`` (gauge), plus
  ``ipc.task_bytes{path=pickled|zero_copy}`` — the serialized payload a
  task ships on the legacy pickle path versus the plan-id path, and
  ``ipc.slot_appends`` — energies appended into reserved plan capacity
  by the adaptive wave loop;
* ``adaptive.*`` — wave-scheduled energy quadrature
  (``TransportCalculation`` with ``energy_mode="adaptive"``):
  ``adaptive.waves`` / ``adaptive.nodes_added`` /
  ``adaptive.nodes_saved_vs_uniform`` (counters) and
  ``adaptive.est_error`` (gauge: worst interval interpolation error of
  the last scored wave).  All recorded parent-side from bitwise
  round-tripped results, so they are exactly equal on every backend;
* ``cache.*``, ``scf.*``, ``comm.*``, ``kernel.*`` — self-energy cache,
  convergence telemetry, per-level communication and kernel flops.

Mirroring the tracer, the default active registry is a shared
:class:`NullMetrics` whose ``enabled`` flag is False — instrumented call
sites guard on that flag, so unmonitored runs pay one attribute load and
one branch per site, and *exactly nothing* is allocated or stored.

Typical use::

    from repro.observability import MetricsRegistry, use_metrics

    registry = MetricsRegistry()
    with use_metrics(registry):
        curve = IVSweep(scf).transfer_curve(...)
    snap = registry.snapshot()
    snap.write("metrics.json")
"""

from __future__ import annotations

import json
import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "LogLinearHistogram",
    "MetricsSnapshot",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "metric_key",
]


#: Memo of flattened keys — instrument sites use a small fixed set of
#: (name, labels) combinations, so the string assembly is paid once.
_KEY_CACHE: dict = {}
_KEY_CACHE_MAX = 8192


def metric_key(name: str, labels: dict) -> str:
    """Flattened instrument key: ``name`` or ``name{k=v,...}`` (sorted)."""
    if not labels:
        return name
    try:
        cache_key = (name, tuple(sorted(labels.items())))
    except TypeError:  # unorderable/unhashable label values: build directly
        inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        return f"{name}{{{inner}}}"
    key = _KEY_CACHE.get(cache_key)
    if key is None:
        inner = ",".join(f"{k}={v}" for k, v in cache_key[1])
        key = f"{name}{{{inner}}}"
        if len(_KEY_CACHE) < _KEY_CACHE_MAX:
            _KEY_CACHE[cache_key] = key
    return key


class LogLinearHistogram:
    """Log-linear (HDR-style) histogram of positive-ish values.

    Each power-of-two octave is subdivided into ``subbuckets`` linear
    bins, giving a constant ~``1/subbuckets`` relative resolution over an
    unbounded dynamic range with a bounded bucket count.  Values <= 0
    land in a dedicated underflow bucket (index ``None`` in the export).

    Example
    -------
    >>> h = LogLinearHistogram()
    >>> for v in (1.0, 1.1, 2.5, 40.0):
    ...     h.observe(v)
    >>> h.count, h.min, h.max
    (4, 1.0, 40.0)
    >>> h.merge(h); h.count
    8
    """

    __slots__ = ("subbuckets", "buckets", "underflow", "count", "total",
                 "min", "max")

    def __init__(self, subbuckets: int = 4):
        self.subbuckets = subbuckets
        self.buckets: dict[int, int] = {}
        self.underflow = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        mantissa, exponent = math.frexp(value)  # value = m * 2^e, m in [.5,1)
        sub = int((2.0 * mantissa - 1.0) * self.subbuckets)
        return exponent * self.subbuckets + min(sub, self.subbuckets - 1)

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """(low, high) value range of bucket ``index``."""
        exponent, sub = divmod(index, self.subbuckets)
        width = 2.0 ** (exponent - 1) / self.subbuckets
        low = 2.0 ** (exponent - 1) + sub * width
        return low, low + width

    def observe(self, value: float) -> None:
        """Add one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if value <= 0.0 or not math.isfinite(value):
            self.underflow += 1
            return
        idx = self._index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (bucket midpoint); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = self.underflow
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= target:
                low, high = self.bucket_bounds(idx)
                return 0.5 * (low + high)
        return self.max

    def merge(self, other: "LogLinearHistogram") -> None:
        """Fold another histogram of the same geometry into this one."""
        if other.subbuckets != self.subbuckets:
            raise ValueError("histogram geometries differ")
        # snapshot first: merging a histogram into itself must double it
        items = list(other.buckets.items())
        self.underflow += other.underflow
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for idx, n in items:
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    def to_dict(self) -> dict:
        """JSON view: count/sum/min/max plus sparse bucket counts."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "underflow": self.underflow,
            "subbuckets": self.subbuckets,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogLinearHistogram":
        """Inverse of :meth:`to_dict`."""
        h = cls(subbuckets=int(data.get("subbuckets", 4)))
        h.count = int(data["count"])
        h.total = float(data["sum"])
        h.min = math.inf if data.get("min") is None else float(data["min"])
        h.max = -math.inf if data.get("max") is None else float(data["max"])
        h.underflow = int(data.get("underflow", 0))
        h.buckets = {int(k): int(v) for k, v in data.get("buckets", {}).items()}
        return h


@dataclass
class MetricsSnapshot:
    """Immutable-by-convention view of a registry at one instant.

    All four maps are keyed by the flattened ``name{k=v,...}`` string of
    :func:`metric_key`.  Snapshots support :meth:`merge` (combine two
    runs), :meth:`diff` (what happened between two snapshots of the same
    registry) and round-trip JSON (:meth:`to_dict` / :meth:`from_dict`),
    which is the format the regression gate consumes.
    """

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    series: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def counter(self, name: str, default: float = 0.0, **labels) -> float:
        """Counter value by name and labels (``default`` when absent)."""
        return self.counters.get(metric_key(name, labels), default)

    def gauge(self, name: str, default: float | None = None, **labels):
        """Gauge value by name and labels."""
        return self.gauges.get(metric_key(name, labels), default)

    def with_prefix(self, kind: str, prefix: str) -> dict:
        """All ``kind`` ("counters", "series", ...) entries under a prefix."""
        source = getattr(self, kind)
        return {k: v for k, v in source.items() if k.startswith(prefix)}

    def total(self, prefix: str) -> float:
        """Sum of all counters whose key starts with ``prefix``."""
        return sum(
            v for k, v in self.counters.items() if k.startswith(prefix)
        )

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combined snapshot: counters add, series concatenate, gauges
        take ``other``'s value, histograms merge."""
        out = MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={
                k: LogLinearHistogram.from_dict(h.to_dict())
                for k, h in self.histograms.items()
            },
            series={k: list(v) for k, v in self.series.items()},
        )
        for k, v in other.counters.items():
            out.counters[k] = out.counters.get(k, 0.0) + v
        out.gauges.update(other.gauges)
        for k, h in other.histograms.items():
            if k in out.histograms:
                out.histograms[k].merge(h)
            else:
                out.histograms[k] = LogLinearHistogram.from_dict(h.to_dict())
        for k, v in other.series.items():
            out.series.setdefault(k, []).extend(v)
        return out

    def diff(self, baseline: "MetricsSnapshot") -> "MetricsSnapshot":
        """What changed since ``baseline`` (an earlier snapshot of the
        same registry): counters subtract, series keep only the new tail,
        gauges and histograms report the current state."""
        out = MetricsSnapshot(
            gauges=dict(self.gauges),
            histograms=dict(self.histograms),
        )
        for k, v in self.counters.items():
            delta = v - baseline.counters.get(k, 0.0)
            if delta != 0.0:
                out.counters[k] = delta
        for k, v in self.series.items():
            tail = v[len(baseline.series.get(k, ())):]
            if tail:
                out.series[k] = tail
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible document (the ``--metrics FILE`` format)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                k: h.to_dict() for k, h in self.histograms.items()
            },
            "series": {k: list(v) for k, v in self.series.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        """Inverse of :meth:`to_dict`."""
        return cls(
            counters={k: float(v) for k, v in data.get("counters", {}).items()},
            gauges=dict(data.get("gauges", {})),
            histograms={
                k: LogLinearHistogram.from_dict(h)
                for k, h in data.get("histograms", {}).items()
            },
            series={
                # JSON turns (step, value) tuples into lists; restore them
                k: [tuple(entry) for entry in v]
                for k, v in data.get("series", {}).items()
            },
        )

    def write(self, path) -> None:
        """Serialise to ``path`` as indented JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "MetricsSnapshot":
        """Load a snapshot written by :meth:`write`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def flat(self) -> dict:
        """Single-level numeric dict for the regression checker.

        Counters and gauges appear under their key; histograms contribute
        ``<key>.count`` and ``<key>.mean``; series contribute
        ``<key>.last`` and ``<key>.len``.
        """
        out: dict[str, float] = {}
        out.update(self.counters)
        for k, v in self.gauges.items():
            if isinstance(v, (int, float)):
                out[k] = float(v)
        for k, h in self.histograms.items():
            out[f"{k}.count"] = float(h.count)
            out[f"{k}.mean"] = h.mean
        for k, v in self.series.items():
            out[f"{k}.len"] = float(len(v))
            if v and isinstance(v[-1][1] if isinstance(v[-1], (list, tuple))
                               else v[-1], (int, float)):
                last = v[-1][1] if isinstance(v[-1], (list, tuple)) else v[-1]
                out[f"{k}.last"] = float(last)
        return out


class MetricsRegistry:
    """Thread-safe live registry behind the module's active-metrics slot.

    Example
    -------
    >>> r = MetricsRegistry()
    >>> r.inc("tasks", 3, level="energy")
    >>> r.gauge("residual", 1e-4)
    >>> r.observe("iters", 12.0)
    >>> r.record("scf.residual", 0.1)
    >>> snap = r.snapshot()
    >>> snap.counter("tasks", level="energy")
    3.0
    >>> snap.gauge("residual")
    0.0001
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, object] = {}
        self._histograms: dict[str, LogLinearHistogram] = {}
        self._series: dict[str, list] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to a counter (monotonic total)."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def gauge(self, name: str, value, **labels) -> None:
        """Set a gauge to its latest value."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Add one sample to a log-linear histogram."""
        key = metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = LogLinearHistogram()
            hist.observe(value)

    # Fast paths for per-solve call sites: the caller pre-flattens the key
    # (via :func:`metric_key`) once, skipping the kwargs dict and label
    # sort on every hit.  Semantically identical to inc/observe.
    def inc_key(self, key: str, value: float = 1.0) -> None:
        """:meth:`inc` with an already-flattened instrument key."""
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def observe_key(self, key: str, value: float) -> None:
        """:meth:`observe` with an already-flattened instrument key."""
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = LogLinearHistogram()
            hist.observe(value)

    def record(self, name: str, value, step: int | None = None,
               **labels) -> None:
        """Append ``(step, value)`` to a series (auto-numbered steps)."""
        key = metric_key(name, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = []
            series.append(
                [len(series) if step is None else int(step), value]
            )

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a snapshot from another registry into this live one.

        The merge half of cross-process telemetry (see
        :mod:`repro.observability.telemetry`): counters add, gauges take
        the snapshot's value, histograms merge bucket-wise and series
        extend — the same semantics as :meth:`MetricsSnapshot.merge`,
        applied in place so worker deltas accumulate into the parent's
        active registry under their original keys.

        Example
        -------
        >>> parent, worker = MetricsRegistry(), MetricsRegistry()
        >>> parent.inc("tasks", 2); worker.inc("tasks", 3)
        >>> parent.merge_snapshot(worker.snapshot())
        >>> parent.snapshot().counter("tasks")
        5.0
        """
        with self._lock:
            for k, v in snap.counters.items():
                self._counters[k] = self._counters.get(k, 0.0) + float(v)
            self._gauges.update(snap.gauges)
            for k, h in snap.histograms.items():
                mine = self._histograms.get(k)
                if mine is None:
                    self._histograms[k] = LogLinearHistogram.from_dict(
                        h.to_dict()
                    )
                else:
                    mine.merge(h)
            for k, v in snap.series.items():
                self._series.setdefault(k, []).extend(
                    [list(entry) for entry in v]
                )

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Deep-enough copy of the current state (safe to keep/export)."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    k: LogLinearHistogram.from_dict(h.to_dict())
                    for k, h in self._histograms.items()
                },
                series={k: list(v) for k, v in self._series.items()},
            )

    def reset(self) -> None:
        """Clear every instrument (fresh run on a reused registry)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._series.clear()


class NullMetrics:
    """Do-nothing registry: the zero-overhead default when metrics are off.

    Stateless and shared as :data:`NULL_METRICS`; ``enabled`` is False so
    instrumented call sites skip their label/arithmetic work entirely —
    the same contract as :class:`repro.observability.NullTracer`.

    >>> from repro.observability import get_metrics
    >>> get_metrics().enabled
    False
    """

    enabled = False

    def inc(self, name, value=1.0, **labels):
        return None

    def gauge(self, name, value, **labels):
        return None

    def observe(self, name, value, **labels):
        return None

    def inc_key(self, key, value=1.0):
        return None

    def observe_key(self, key, value):
        return None

    def record(self, name, value, step=None, **labels):
        return None

    def merge_snapshot(self, snap):
        return None

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()

    def reset(self):
        return None


#: The process-wide disabled registry (default active metrics).
NULL_METRICS = NullMetrics()

_ACTIVE = NULL_METRICS
_ACTIVE_LOCK = threading.Lock()


def get_metrics():
    """The active registry (a :class:`NullMetrics` unless one is installed)."""
    return _ACTIVE


def set_metrics(registry):
    """Install ``registry`` as active; returns the previous one.

    Pass None to restore the disabled default.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = registry if registry is not None else NULL_METRICS
    return previous


@contextmanager
def use_metrics(registry):
    """Scope an active registry: ``with use_metrics(MetricsRegistry()):``.

    Restores the previously active registry on exit, exception or not.
    """
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
