"""Automated performance-regression gate against measured baselines.

``benchmarks/baselines/BENCH_*.json`` holds the measured metrics of
committed benchmark runs (flat dicts from
:func:`repro.observability.flat_metrics` or
:meth:`repro.observability.MetricsSnapshot.flat`).  This module compares
a fresh run against those baselines with *per-metric tolerance bands* and
emits pass/warn/fail verdicts, so the paper's sustained-Flop/s story
cannot silently rot between PRs:

* **flop counts are deterministic** — same code, same shapes, same count,
  on any machine.  Their band is exact by default: a changed
  ``flops.*`` or ``counted_flops`` value means the *algorithm* changed
  and must be an intentional, reviewed baseline bump
  (``scripts/refresh_baselines.py``).
* **times are noisy and machine-dependent** — ``time.*``, ``wall_time_s``
  and ``sustained_flops`` get wide warn-only bands by default; CI runs
  the gate in warn-only mode and uploads the metrics JSON as an artifact.

The verdict ladder per metric: within the warn band -> ``pass``; outside
warn but inside fail (or fail band disabled) -> ``warn``; outside the
fail band -> ``fail``.  The report's overall verdict is the worst metric
verdict, and ``strict=False`` (warn-only mode) caps it at ``warn``.
"""

from __future__ import annotations

import fnmatch
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ToleranceBand",
    "MetricVerdict",
    "RegressionReport",
    "DEFAULT_BANDS",
    "band_for",
    "compare_metrics",
    "load_baseline",
    "load_baselines",
    "check_against_baselines",
]


@dataclass(frozen=True)
class ToleranceBand:
    """Relative tolerance band of one metric pattern.

    ``warn`` and ``fail`` are relative deviations (|current/baseline - 1|);
    ``fail=None`` makes the band warn-only (can never fail the gate).
    """

    warn: float
    fail: float | None = None

    def verdict(self, baseline: float, current: float) -> str:
        """pass/warn/fail of one value pair under this band."""
        if baseline == current:
            return "pass"
        scale = max(abs(baseline), 1e-300)
        deviation = abs(current - baseline) / scale
        if not math.isfinite(deviation):
            return "fail" if self.fail is not None else "warn"
        if deviation <= self.warn:
            return "pass"
        if self.fail is not None and deviation > self.fail:
            return "fail"
        return "warn"


#: Pattern -> band, first match wins (order matters).
DEFAULT_BANDS: tuple = (
    # deterministic counts: any drift is an algorithm change
    ("flops.*", ToleranceBand(warn=1e-12, fail=1e-9)),
    ("counted_flops", ToleranceBand(warn=1e-12, fail=1e-9)),
    ("n_tasks", ToleranceBand(warn=1e-12, fail=1e-9)),
    ("n_spans", ToleranceBand(warn=0.1, fail=1.0)),
    # timings: machine- and noise-dependent, warn-only
    ("time.*", ToleranceBand(warn=0.5)),
    ("rank.*", ToleranceBand(warn=0.5)),
    ("wall_time_s", ToleranceBand(warn=0.5)),
    ("sustained_flops", ToleranceBand(warn=0.5)),
    # anything else: generous warn-only band
    ("*", ToleranceBand(warn=0.25)),
)


def band_for(metric: str, bands=DEFAULT_BANDS) -> ToleranceBand:
    """First matching band of a metric name (glob patterns, in order)."""
    for pattern, band in bands:
        if fnmatch.fnmatchcase(metric, pattern):
            return band
    return ToleranceBand(warn=0.25)


@dataclass(frozen=True)
class MetricVerdict:
    """Comparison outcome of one metric."""

    metric: str
    baseline: float
    current: float
    verdict: str

    @property
    def deviation(self) -> float:
        """Relative deviation |current/baseline - 1| (inf for /0)."""
        if self.baseline == self.current:
            return 0.0
        return abs(self.current - self.baseline) / max(
            abs(self.baseline), 1e-300
        )


@dataclass
class RegressionReport:
    """All metric verdicts of one baseline comparison."""

    name: str
    checks: list = field(default_factory=list)
    missing: list = field(default_factory=list)
    strict: bool = False

    @property
    def verdict(self) -> str:
        """Worst metric verdict; warn-only mode caps 'fail' at 'warn'."""
        worst = "pass"
        for c in self.checks:
            if c.verdict == "fail":
                worst = "fail"
                break
            if c.verdict == "warn":
                worst = "warn"
        if self.missing and worst == "pass":
            worst = "warn"
        if worst == "fail" and not self.strict:
            worst = "warn"
        return worst

    def counts(self) -> dict:
        """{'pass': n, 'warn': n, 'fail': n} over the metric checks."""
        out = {"pass": 0, "warn": 0, "fail": 0}
        for c in self.checks:
            out[c.verdict] += 1
        return out

    def to_dict(self) -> dict:
        """JSON view (the CI artifact format)."""
        return {
            "name": self.name,
            "verdict": self.verdict,
            "strict": self.strict,
            "missing": list(self.missing),
            "checks": [
                {
                    "metric": c.metric,
                    "baseline": c.baseline,
                    "current": c.current,
                    "deviation": c.deviation,
                    "verdict": c.verdict,
                }
                for c in self.checks
            ],
        }

    def summary(self) -> str:
        """Human-readable digest for the doctor CLI and CI logs."""
        counts = self.counts()
        lines = [
            f"baseline {self.name}: {self.verdict.upper()} "
            f"({counts['pass']} pass, {counts['warn']} warn, "
            f"{counts['fail']} fail"
            + (f", {len(self.missing)} missing" if self.missing else "")
            + ")"
        ]
        flagged = [c for c in self.checks if c.verdict != "pass"]
        flagged.sort(key=lambda c: -c.deviation)
        for c in flagged[:8]:
            lines.append(
                f"  {c.verdict.upper():4s} {c.metric}: "
                f"{c.baseline:.6g} -> {c.current:.6g} "
                f"({c.deviation:+.1%})"
            )
        if len(flagged) > 8:
            lines.append(f"  ... and {len(flagged) - 8} more")
        return "\n".join(lines)


def compare_metrics(
    current: dict,
    baseline: dict,
    name: str = "baseline",
    bands=DEFAULT_BANDS,
    strict: bool = False,
) -> RegressionReport:
    """Compare two flat metric dicts metric-by-metric.

    Baseline metrics absent from ``current`` are listed as ``missing``
    (a warn); metrics only in ``current`` are new and ignored — adding
    instrumentation must not fail the gate.

    Example
    -------
    >>> r = compare_metrics({"flops.k": 10.0, "wall_time_s": 1.2},
    ...                     {"flops.k": 10.0, "wall_time_s": 1.0})
    >>> r.verdict
    'warn'
    >>> [c.verdict for c in r.checks]
    ['pass', 'warn']
    """
    report = RegressionReport(name=name, strict=strict)
    for metric in sorted(baseline):
        base_value = baseline[metric]
        if not isinstance(base_value, (int, float)) or isinstance(
            base_value, bool
        ):
            continue
        if metric not in current:
            report.missing.append(metric)
            continue
        value = float(current[metric])
        verdict = band_for(metric, bands).verdict(float(base_value), value)
        report.checks.append(
            MetricVerdict(metric, float(base_value), value, verdict)
        )
    return report


# ----------------------------------------------------------------------
def load_baseline(path) -> dict:
    """Load one ``BENCH_*.json`` flat metrics dict."""
    with open(path) as fh:
        return json.load(fh)


def load_baselines(directory) -> dict:
    """All baselines of a directory: ``{"t3_rgf": {...}, ...}``."""
    out = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        out[path.stem[len("BENCH_"):]] = load_baseline(path)
    return out


def check_against_baselines(
    current: dict,
    directory,
    name: str,
    bands=DEFAULT_BANDS,
    strict: bool = False,
) -> RegressionReport:
    """Compare ``current`` against the named committed baseline.

    A missing baseline file yields an empty pass report flagged with a
    ``missing`` entry — a fresh repo must not fail its own gate.
    """
    path = Path(directory) / f"BENCH_{name}.json"
    if not path.exists():
        report = RegressionReport(name=name, strict=strict)
        report.missing.append(f"(no baseline file {path.name})")
        return report
    return compare_metrics(
        current, load_baseline(path), name=name, bands=bands, strict=strict
    )
