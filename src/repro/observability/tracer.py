"""Hierarchical phase tracing and measured flop accounting.

The paper's headline claim *is* a measurement: sustained Flop/s =
(analytically counted flops) / (wall time), the Gordon Bell convention.
This module provides the measurement substrate: a :class:`Tracer` with
nestable, exception-safe phase spans (``with tracer.span("rgf"): ...``)
that attribute wall time *and* counted flops to each phase, and a
module-level *active tracer* that the instrumented kernels
(:class:`repro.solvers.BlockTridiagLU`, :func:`repro.negf.sancho_rubio`,
:class:`repro.wf.WFSolver`, ...) report into.

Design constraints, in order:

1. **~zero cost when off.**  The default active tracer is a shared
   :class:`NullTracer` whose ``enabled`` flag is ``False``; every
   instrumented call site guards its counting arithmetic behind that flag,
   so uninstrumented runs pay one attribute load and one branch per kernel
   call (bounded by the tests).
2. **Exception safety.**  A span opened with ``with`` is always closed and
   recorded, even when the body raises — a traced sweep that hits a fault
   still produces a coherent timeline.
3. **Thread safety.**  The open-span stack is thread-local (spans nest per
   thread); completed spans and the global flop ledger are guarded by a
   lock.  Concurrent threads trace independent timelines into one tracer.

Example
-------
>>> from repro.observability import Tracer, use_tracer
>>> tracer = Tracer()
>>> with use_tracer(tracer):
...     with tracer.span("outer"):
...         with tracer.span("inner"):
...             tracer.add_flops("gemm", 128.0)
>>> tracer.counter.total
128.0
>>> [s.name for s in tracer.spans]       # completion order: inner first
['inner', 'outer']
>>> tracer.spans[0].depth
1
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "trace_span",
    "add_flops",
]


class Span:
    """One closed (or still open) timed phase of a traced run.

    Attributes
    ----------
    name : str
        Phase label, e.g. ``"rgf.solve"`` or ``"task"``.
    category : str
        Coarse grouping used by the Chrome-trace exporter ("phase",
        "kernel", "task", "rank", ...).
    t_start, t_end : float
        Clock readings (:func:`time.perf_counter` by default); ``t_end``
        is None while the span is open.
    own_flops : float
        Flops attributed while this span was the innermost open span of
        its thread.
    total_flops : float
        ``own_flops`` plus the totals of all closed child spans.
    depth : int
        Nesting depth within this thread (0 = top level).
    attrs : dict
        Free-form metadata (``rank=3``, ``task=(ik, ie)``, ...).
    thread : int
        Small per-tracer thread ordinal (Chrome-trace ``tid``).

    Example
    -------
    >>> t = Tracer()
    >>> with t.span("phase", rank=2):
    ...     t.add_flops("k", 8.0)
    >>> s = t.spans[0]
    >>> (s.name, s.own_flops, s.attrs["rank"], s.duration_s >= 0.0)
    ('phase', 8.0, 2, True)
    """

    __slots__ = (
        "name",
        "category",
        "t_start",
        "t_end",
        "own_flops",
        "total_flops",
        "depth",
        "attrs",
        "thread",
    )

    def __init__(self, name, category, t_start, depth, attrs, thread):
        self.name = name
        self.category = category
        self.t_start = t_start
        self.t_end = None
        self.own_flops = 0.0
        self.total_flops = 0.0
        self.depth = depth
        self.attrs = attrs
        self.thread = thread

    @property
    def duration_s(self) -> float:
        """Wall time of the span (s); 0.0 while still open."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
            f"{self.total_flops:.3g} flops, depth={self.depth})"
        )


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span` (exception-safe)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb):
        self._tracer._close(self._span)
        return False  # never swallow exceptions


class Tracer:
    """Collects nested phase spans and a measured flop ledger.

    Parameters
    ----------
    clock : callable
        Monotonic time source; injectable for deterministic tests.

    Attributes
    ----------
    enabled : bool
        Always True — instrumented call sites branch on this.
    spans : list of Span
        Completed spans, in completion (i.e. post-order) order.
    counter : FlopCounter
        Global measured flop ledger across all spans and threads.
    epoch : float
        Clock reading at construction; the Chrome-trace time origin.

    Example
    -------
    >>> t = Tracer()
    >>> with t.span("sweep"):
    ...     with t.span("bias", category="task"):
    ...         t.add_flops("rgf", 100.0)
    >>> t.counter.counts["rgf"]
    100.0
    >>> t.phase_seconds()["sweep"] >= t.phase_seconds()["bias"]
    True
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        # deferred: repro.perf pulls in repro.parallel, whose scheduler is
        # itself instrumented with this module (import cycle at load time)
        from ..perf.flops import FlopCounter

        self._clock = clock
        self.epoch = clock()
        # wall-clock reading paired with `epoch`: the cross-process anchor
        # `absorb` uses to place worker spans on this tracer's timeline
        self.epoch_wall = time.time()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._thread_ids: dict[int, int] = {}
        self.spans: list[Span] = []
        self.counter = FlopCounter()

    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _thread_ordinal(self) -> int:
        ident = threading.get_ident()
        ordinal = self._thread_ids.get(ident)
        if ordinal is None:
            with self._lock:
                ordinal = self._thread_ids.setdefault(
                    ident, len(self._thread_ids)
                )
        return ordinal

    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "phase", **attrs) -> _SpanHandle:
        """Open a nested span; use as ``with tracer.span("rgf"): ...``.

        The span is closed (and its wall time recorded) when the ``with``
        block exits, *including* via an exception.
        """
        stack = self._stack()
        span = Span(
            name,
            category,
            self._clock(),
            len(stack),
            attrs,
            self._thread_ordinal(),
        )
        stack.append(span)
        return _SpanHandle(self, span)

    def _close(self, span: Span) -> None:
        span.t_end = self._clock()
        span.total_flops += span.own_flops
        stack = self._stack()
        # pop up to and including `span` — tolerates a caller that leaked
        # an unclosed inner span (the leaked span is closed at the same
        # timestamp so the timeline stays consistent)
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.t_end = span.t_end  # pragma: no cover - defensive
            top.total_flops += top.own_flops
            with self._lock:
                self.spans.append(top)
        if stack:
            stack[-1].total_flops += span.total_flops
        with self._lock:
            self.spans.append(span)

    def add_flops(self, kernel: str, flops: float) -> None:
        """Attribute measured flops to ``kernel`` and the innermost span."""
        with self._lock:
            self.counter.add(kernel, flops)
        stack = self._stack()
        if stack:
            stack[-1].own_flops += flops

    def absorb(self, worker, spans=(), flops=None, wall_epoch=None,
               perf_epoch: float = 0.0) -> int:
        """Fold closed spans recorded by another process into this tracer.

        This is the merge half of cross-process telemetry (see
        :mod:`repro.observability.telemetry`): a worker traces into its
        own :class:`Tracer`, ships the closed spans as 9-tuples
        ``(name, category, t_start, t_end, own_flops, total_flops,
        depth, attrs, thread)`` plus its per-kernel flop ledger, and the
        parent absorbs them here.

        Timestamps are re-anchored onto this tracer's clock: the worker
        pairs its ``perf_counter`` epoch (``perf_epoch``) with a
        ``time.time()`` reading (``wall_epoch``), and so does this
        tracer (``epoch`` / ``epoch_wall``), which pins the two
        monotonic clocks to a common wall instant.  With
        ``wall_epoch=None`` the wall term is skipped and the worker's
        epoch is aligned to this tracer's epoch (deterministic tests).

        Every absorbed span gets ``attrs["worker"] = worker`` provenance
        (unless the span already carries one) and the flop ledger adds
        into :attr:`counter`.  Returns the number of spans absorbed.

        Example
        -------
        >>> parent = Tracer()
        >>> n = parent.absorb(
        ...     "pid:7", spans=[("rgf", "kernel", 1.0, 2.0, 8.0, 8.0,
        ...                      0, {}, 0)],
        ...     flops={"rgf": 8.0}, perf_epoch=1.0,
        ... )
        >>> n, parent.counter.counts["rgf"]
        (1, 8.0)
        >>> parent.spans[-1].attrs["worker"]
        'pid:7'
        """
        offset = self.epoch - float(perf_epoch)
        if wall_epoch is not None and self.epoch_wall is not None:
            offset += float(wall_epoch) - self.epoch_wall
        absorbed = []
        for rec in spans:
            name, category, t0, t1, own, total, depth, attrs, tid = rec
            span = Span(
                name, category, float(t0) + offset, int(depth),
                dict(attrs), int(tid),
            )
            span.t_end = float(t1 if t1 is not None else t0) + offset
            span.own_flops = float(own)
            span.total_flops = float(total)
            span.attrs.setdefault("worker", worker)
            absorbed.append(span)
        with self._lock:
            self.spans.extend(absorbed)
            for kernel, value in (flops or {}).items():
                self.counter.add(kernel, float(value))
        return len(absorbed)

    # ------------------------------------------------------------------
    def current_span(self) -> Span | None:
        """The innermost open span of the calling thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    def elapsed(self) -> float:
        """Seconds since the tracer was constructed."""
        return self._clock() - self.epoch

    @property
    def total_flops(self) -> float:
        """Sum of the measured flop ledger over all kernels."""
        return self.counter.total

    def span_extent_s(self) -> float:
        """Wall time covered by completed spans (last end - first start)."""
        with self._lock:
            if not self.spans:
                return 0.0
            t0 = min(s.t_start for s in self.spans)
            t1 = max(s.t_end for s in self.spans if s.t_end is not None)
        return max(t1 - t0, 0.0)

    def phase_seconds(self) -> dict:
        """Total wall time per span name (nested spans each count)."""
        out: dict[str, float] = {}
        with self._lock:
            for s in self.spans:
                out[s.name] = out.get(s.name, 0.0) + s.duration_s
        return out

    def rank_seconds(self) -> dict:
        """Busy wall time per ``rank`` attribute over rank-category spans."""
        out: dict[int, float] = {}
        with self._lock:
            for s in self.spans:
                rank = s.attrs.get("rank")
                if rank is not None and s.category == "rank":
                    out[int(rank)] = out.get(int(rank), 0.0) + s.duration_s
        return out

    def task_count(self) -> int:
        """Number of completed task-category spans."""
        with self._lock:
            return sum(1 for s in self.spans if s.category == "task")


class _NullSpanHandle:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_HANDLE = _NullSpanHandle()


class NullTracer:
    """Do-nothing tracer: the thread-safe default when tracing is off.

    Every method is a no-op; ``enabled`` is False so instrumented call
    sites skip their counting arithmetic entirely.  Stateless, hence
    trivially thread-safe and shared as the module singleton
    :data:`NULL_TRACER`.

    Example
    -------
    >>> from repro.observability import get_tracer
    >>> t = get_tracer()          # default: the NullTracer singleton
    >>> t.enabled
    False
    >>> with t.span("anything"):  # still usable as a context manager
    ...     t.add_flops("k", 1.0)
    >>> t.total_flops
    0.0
    """

    enabled = False
    spans: tuple = ()
    epoch_wall = None

    def span(self, name, category="phase", **attrs):
        return _NULL_HANDLE

    def add_flops(self, kernel, flops):
        return None

    def absorb(self, worker, spans=(), flops=None, wall_epoch=None,
               perf_epoch=0.0):
        return 0

    def current_span(self):
        return None

    def elapsed(self):
        return 0.0

    @property
    def total_flops(self):
        return 0.0

    def span_extent_s(self):
        return 0.0

    def phase_seconds(self):
        return {}

    def rank_seconds(self):
        return {}

    def task_count(self):
        return 0


#: The process-wide disabled tracer (default active tracer).
NULL_TRACER = NullTracer()

_ACTIVE = NULL_TRACER
_ACTIVE_LOCK = threading.Lock()


def get_tracer():
    """The active tracer (a :class:`NullTracer` unless one is installed)."""
    return _ACTIVE


def set_tracer(tracer):
    """Install ``tracer`` as the active tracer; returns the previous one.

    Pass None to restore the disabled default.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer):
    """Scope an active tracer: ``with use_tracer(Tracer()) as t: ...``.

    Restores the previously active tracer on exit, exception or not.

    Example
    -------
    >>> from repro.observability import Tracer, use_tracer, get_tracer
    >>> with use_tracer(Tracer()) as t:
    ...     get_tracer() is t
    True
    >>> get_tracer().enabled
    False
    """
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def trace_span(name: str, category: str = "phase", **attrs):
    """Open a span on the *active* tracer (no-op when tracing is off)."""
    return _ACTIVE.span(name, category=category, **attrs)


def add_flops(kernel: str, flops: float) -> None:
    """Report measured flops to the *active* tracer (no-op when off)."""
    _ACTIVE.add_flops(kernel, flops)
