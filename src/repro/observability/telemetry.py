"""Cross-process telemetry: worker capture, merge-back, live event stream.

Three gaps are closed here, all variations of "the paths we scaled are
the paths we stopped seeing into":

1. **Worker-side capture + merge-back.**  The process backend (and the
   distributed driver running on top of it) executes kernels in forked
   children, where the module-global tracer/metrics singletons are
   *copies* — everything the instrumented kernels recorded there used to
   die with the worker.  :func:`capture_telemetry` installs a fresh
   :class:`~repro.observability.metrics.MetricsRegistry` and
   :class:`~repro.observability.tracer.Tracer` around a worker task and
   packages what they collected into a compact, picklable
   :class:`TelemetryDelta` (metric snapshot + closed spans + flop
   ledger + clock epochs).  The parent folds deltas back with
   :func:`merge_delta`, so ``flops.*``, ``selfenergy_cache.*``,
   ``health.*`` and ``ipc.*`` totals are exact across every backend, and
   merged spans land in the parent tracer with worker provenance and
   clock-offset alignment (:meth:`Tracer.absorb`).  On the zero-copy
   plan path, deltas travel through a :class:`TelemetrySidecar` — a
   fixed-width shared-memory row buffer next to the ``ResultArena`` —
   instead of the pickle return path.

2. **Structured live event stream.**  :class:`TelemetryWriter` appends
   typed JSONL events (:data:`EVENT_TYPES`) with monotonic sequence
   numbers, wall-clock stamps and progress/ETA fields to a file that can
   be tailed while the run is still going.  ``repro top EVENTS`` renders
   the in-flight view; ``repro doctor --events EVENTS`` replays a
   finished file.  The writer is held in the same null-default
   process-wide slot as the tracer (:func:`get_events` /
   :func:`use_events`), so instrumented sites pay one branch when no
   stream is attached.

3. **Readers.**  :func:`read_events` tolerates a truncated final line
   (the writer died mid-append — the tail is dropped, everything before
   it survives); :func:`validate_events` checks the schema and ordering
   invariants; :func:`summarize_events` / :func:`render_event_summary`
   are the shared backend of ``repro top`` and the doctor's replay mode.

Example
-------
>>> from repro.observability.telemetry import capture_telemetry, merge_delta
>>> from repro.observability import MetricsRegistry, use_metrics, add_flops
>>> with use_metrics(MetricsRegistry()) as parent:
...     with capture_telemetry(worker="w0", force=True) as cap:
...         add_flops("rgf", 64.0)       # lands in the capture tracer
...     _ = merge_delta(cap.delta)       # ... and is folded back here
>>> cap.delta.flops["rgf"]
64.0
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import pickle
import struct
import threading
import time
from contextlib import contextmanager

from .metrics import MetricsRegistry, MetricsSnapshot, get_metrics, set_metrics
from .tracer import Tracer, get_tracer, set_tracer

__all__ = [
    "EVENT_TYPES",
    "EVENT_SCHEMA_VERSION",
    "TelemetryDelta",
    "TelemetryCapture",
    "capture_telemetry",
    "merge_delta",
    "TelemetrySidecar",
    "TelemetryWriter",
    "NullEventWriter",
    "NULL_EVENTS",
    "get_events",
    "set_events",
    "use_events",
    "read_events",
    "validate_events",
    "summarize_events",
    "render_event_summary",
]

#: Version stamped into every event line (``"v"``) and every delta.
EVENT_SCHEMA_VERSION = 1

#: The closed set of event types a :class:`TelemetryWriter` will emit.
EVENT_TYPES = (
    "run_started",
    "heartbeat",
    "point_done",
    "wave_done",
    "degradation",
    "straggler",
    "chunk_retired",
    "run_finished",
)


# ---------------------------------------------------------------------------
# worker-side capture


class TelemetryDelta:
    """What one worker task recorded: metrics, spans, flops, clock epochs.

    A delta is the unit that crosses the process boundary.  It is built
    from a *fresh* registry/tracer pair (see :func:`capture_telemetry`),
    so its metric snapshot is already a diff against zero and merges
    into the parent by plain addition
    (:meth:`MetricsRegistry.merge_snapshot`).

    Attributes
    ----------
    worker : str
        Provenance label (``"pid:4242"``, ``"rank:3"``); stamped onto
        every absorbed span as ``attrs["worker"]``.
    wall_epoch : float or None
        ``time.time()`` at capture start — the cross-process clock
        anchor used to place worker spans on the parent timeline.
        None suppresses wall alignment (deterministic tests).
    perf_epoch : float
        The capture tracer's ``perf_counter`` epoch; worker span
        timestamps are relative to the same clock.
    duration_s : float
        Wall time the capture was open (merge-overhead accounting).
    metrics : dict or None
        ``MetricsSnapshot.to_dict()`` of everything the task recorded.
    spans : list of tuple
        Closed spans as 9-tuples ``(name, category, t_start, t_end,
        own_flops, total_flops, depth, attrs, thread)``.
    flops : dict
        Per-kernel measured-flop ledger of the capture tracer.
    """

    __slots__ = (
        "worker", "wall_epoch", "perf_epoch", "duration_s",
        "metrics", "spans", "flops",
    )

    def __init__(self, worker, wall_epoch=None, perf_epoch=0.0,
                 duration_s=0.0, metrics=None, spans=(), flops=None):
        self.worker = worker
        self.wall_epoch = wall_epoch
        self.perf_epoch = perf_epoch
        self.duration_s = duration_s
        self.metrics = metrics
        self.spans = list(spans)
        self.flops = dict(flops or {})

    def is_empty(self) -> bool:
        """True when merging this delta would be a no-op."""
        if self.spans or self.flops:
            return False
        m = self.metrics or {}
        return not any(m.get(k) for k in
                       ("counters", "gauges", "histograms", "series"))

    def to_bytes(self) -> bytes:
        """Compact serialized form (the sidecar row payload)."""
        return pickle.dumps(
            {
                "v": EVENT_SCHEMA_VERSION,
                "worker": self.worker,
                "wall_epoch": self.wall_epoch,
                "perf_epoch": self.perf_epoch,
                "duration_s": self.duration_s,
                "metrics": self.metrics,
                "spans": self.spans,
                "flops": self.flops,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "TelemetryDelta":
        """Inverse of :meth:`to_bytes`."""
        data = pickle.loads(blob)
        return cls(
            worker=data["worker"],
            wall_epoch=data["wall_epoch"],
            perf_epoch=data["perf_epoch"],
            duration_s=data["duration_s"],
            metrics=data["metrics"],
            spans=data["spans"],
            flops=data["flops"],
        )

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"TelemetryDelta(worker={self.worker!r}, "
            f"spans={len(self.spans)}, kernels={len(self.flops)})"
        )


def _span_records(tracer) -> list:
    """Closed spans of ``tracer`` as picklable 9-tuples."""
    records = []
    for s in tracer.spans:
        if s.t_end is None:  # pragma: no cover - open spans not shipped
            continue
        records.append((
            s.name, s.category, s.t_start, s.t_end,
            s.own_flops, s.total_flops, s.depth, dict(s.attrs), s.thread,
        ))
    return records


class TelemetryCapture:
    """Handle yielded by :func:`capture_telemetry`.

    ``delta`` is populated on scope exit when the capture engaged (child
    process, or ``force=True``) and anything was recorded; it stays None
    otherwise — callers ship ``cap.delta`` verbatim and the parent's
    :func:`merge_delta` treats None as "nothing to merge".
    """

    __slots__ = ("worker", "engaged", "delta")

    def __init__(self, worker, engaged):
        self.worker = worker
        self.engaged = engaged
        self.delta = None


def _in_child_process() -> bool:
    return multiprocessing.parent_process() is not None


@contextmanager
def capture_telemetry(worker: str | None = None, force: bool = False):
    """Record tracer/metrics activity in this scope into a shippable delta.

    Installs a fresh :class:`MetricsRegistry` and :class:`Tracer` as the
    process-wide active instruments for the duration of the ``with``
    block, then packages what they collected into ``cap.delta``.  The
    capture only *engages* inside a forked worker process (or when
    ``force=True``): in the parent, instruments already record into the
    live registries, so the scope yields an inert handle and the caller's
    recording is untouched — the same call site is safe on every backend.

    Parameters
    ----------
    worker : str or None
        Provenance label; defaults to ``"pid:<os.getpid()>"``.
    force : bool
        Engage even outside a child process (tests, benchmarks).
    """
    label = worker or f"pid:{os.getpid()}"
    engaged = force or _in_child_process()
    cap = TelemetryCapture(label, engaged)
    if not engaged:
        yield cap
        return
    registry = MetricsRegistry()
    tracer = Tracer()
    wall0 = time.time()
    prev_metrics = set_metrics(registry)
    prev_tracer = set_tracer(tracer)
    try:
        yield cap
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)
        delta = TelemetryDelta(
            worker=label,
            wall_epoch=wall0,
            perf_epoch=tracer.epoch,
            duration_s=tracer.elapsed(),
            metrics=registry.snapshot().to_dict(),
            spans=_span_records(tracer),
            flops=dict(tracer.counter.counts),
        )
        if not delta.is_empty():
            cap.delta = delta


def merge_delta(delta) -> bool:
    """Fold a worker's :class:`TelemetryDelta` into the live instruments.

    Counters add, histograms merge, series extend and spans are absorbed
    into the active tracer with ``attrs["worker"]`` provenance and
    clock-offset alignment — so the merged totals are exactly what a
    serial run of the same workload would have recorded.  Bookkeeping
    lands under ``telemetry.deltas_merged{worker=...}`` /
    ``telemetry.spans_merged``.

    Accepts None (nothing captured) and returns whether anything merged.
    """
    if delta is None or delta.is_empty():
        return False
    merged = False
    metrics = get_metrics()
    if metrics.enabled and delta.metrics:
        metrics.merge_snapshot(MetricsSnapshot.from_dict(delta.metrics))
        merged = True
    tracer = get_tracer()
    if tracer.enabled:
        tracer.absorb(
            delta.worker,
            spans=delta.spans,
            flops=delta.flops,
            wall_epoch=delta.wall_epoch,
            perf_epoch=delta.perf_epoch,
        )
        merged = True
    if merged and metrics.enabled:
        metrics.inc("telemetry.deltas_merged", 1.0, worker=delta.worker)
        metrics.inc("telemetry.spans_merged", float(len(delta.spans)))
    return merged


# ---------------------------------------------------------------------------
# zero-copy sidecar


class TelemetrySidecar:
    """Fixed-width shared-memory rows carrying deltas next to a ResultArena.

    On the zero-copy path results return through shared-memory rows, not
    the pool, so telemetry needs its own lane: one uint8 row per chunk,
    each holding a little-endian 8-byte length prefix followed by the
    pickled :class:`TelemetryDelta`.  A row whose length prefix is 0 was
    never written; a delta too large for the row is *not* written and the
    worker falls back to returning the blob through the pool (the parent
    handles both).  Built on :class:`repro.parallel.plan.DevicePlan`
    (``kind="telemetry"``, writable), so lifecycle, leak detection and
    ``ipc.*`` accounting are inherited.
    """

    _LEN = struct.Struct("<Q")

    def __init__(self, plan):
        self._plan = plan

    @classmethod
    def allocate(cls, n_rows: int, row_bytes: int = 65536,
                 mode: str = "shared") -> "TelemetrySidecar":
        """Owner-side constructor: one zeroed row per expected chunk."""
        import numpy as np

        from ..parallel.plan import DevicePlan

        if n_rows < 1 or row_bytes <= cls._LEN.size:
            raise ValueError(
                "sidecar needs n_rows >= 1 and row_bytes > 8"
            )
        rows = np.zeros((int(n_rows), int(row_bytes)), dtype=np.uint8)
        plan = DevicePlan.publish(
            {"rows": rows}, meta={"kind": "telemetry"},
            mode=mode, writable=True,
        )
        return cls(plan)

    @classmethod
    def attach(cls, sidecar_id: str) -> "TelemetrySidecar":
        """Worker-side constructor: writable mapping of an existing sidecar."""
        from ..parallel.plan import DevicePlan

        return cls(DevicePlan.attach(sidecar_id))

    @property
    def sidecar_id(self) -> str:
        """Segment name shipped in task payloads."""
        return self._plan.plan_id

    @property
    def rows(self):
        """The ``(n_rows, row_bytes)`` uint8 matrix (writable)."""
        return self._plan.array("rows")

    def write(self, row: int, blob: bytes) -> bool:
        """Store ``blob`` into ``row``; False when it does not fit."""
        out = self.rows[row]
        if self._LEN.size + len(blob) > out.size:
            return False
        import numpy as np

        out[:self._LEN.size] = np.frombuffer(
            self._LEN.pack(len(blob)), dtype=np.uint8
        )
        out[self._LEN.size:self._LEN.size + len(blob)] = np.frombuffer(
            blob, dtype=np.uint8
        )
        return True

    def read(self, row: int) -> bytes | None:
        """The blob stored in ``row``, or None when never written."""
        data = self.rows[row]
        (length,) = self._LEN.unpack_from(data.tobytes()[:self._LEN.size])
        if length == 0:
            return None
        return data[self._LEN.size:self._LEN.size + length].tobytes()

    def release(self) -> None:
        """Owner-side teardown (unlinks the segment at refcount zero)."""
        self._plan.release()


# ---------------------------------------------------------------------------
# live event stream


def _json_default(value):
    """Last-resort JSON coercion: numpy scalars to float, else repr."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return repr(value)


class TelemetryWriter:
    """Appends typed JSONL events with monotonic sequence numbers.

    Every line is one JSON object with at least ``v`` (schema version),
    ``seq`` (strictly increasing per writer), ``t`` (wall clock) and
    ``event`` (one of :data:`EVENT_TYPES`); progress events additionally
    carry ``done`` / ``total`` / ``frac`` / ``elapsed_s`` / ``eta_s``.
    Lines are flushed per event so a tailing ``repro top`` sees them
    immediately, and the file is opened in append mode so a resumed
    sweep extends its own history.

    ``run_started`` and ``run_finished`` are idempotent: the layer that
    knows the total (e.g. the sweep loop) and the layer that owns the
    file (the CLI) can both call them without double events — the
    ``context`` dict given at construction is merged into whichever
    ``run_started`` fires first.

    Parameters
    ----------
    path : str
        JSONL file to append to.
    context : dict or None
        Run metadata (command, spec, backend) merged into
        ``run_started``.
    heartbeat_s : float
        Minimum silence between :meth:`maybe_heartbeat` emissions.
    clock : callable
        Wall-clock source; injectable for deterministic tests.
    """

    enabled = True

    def __init__(self, path, context=None, heartbeat_s: float = 5.0,
                 clock=time.time):
        self.path = str(path)
        self.context = dict(context or {})
        self.heartbeat_s = float(heartbeat_s)
        self._clock = clock
        self._fh = open(path, "a")
        self._lock = threading.Lock()
        self.seq = 0
        self._started = False
        self._finished = False
        self._t_started = None
        self._t_last_emit = None
        self.total = None
        self.done = 0

    # -- low level -----------------------------------------------------
    def emit(self, event: str, **fields) -> dict:
        """Append one event line (thread-safe); returns the event dict."""
        if event not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {event!r}; expected one of {EVENT_TYPES}"
            )
        with self._lock:
            now = self._clock()
            record = {
                "v": EVENT_SCHEMA_VERSION,
                "seq": self.seq,
                "t": now,
                "event": event,
            }
            record.update(fields)
            self.seq += 1
            self._t_last_emit = now
            self._fh.write(
                json.dumps(record, default=_json_default) + "\n"
            )
            self._fh.flush()
        return record

    def _progress_fields(self, now) -> dict:
        fields = {"done": self.done, "total": self.total}
        if self._t_started is not None:
            elapsed = max(now - self._t_started, 0.0)
            fields["elapsed_s"] = elapsed
            if self.total:
                fields["frac"] = self.done / self.total
                if self.done > 0:
                    fields["eta_s"] = (
                        elapsed / self.done * (self.total - self.done)
                    )
        return fields

    # -- typed events --------------------------------------------------
    def run_started(self, total=None, **fields) -> None:
        """Emit ``run_started`` once; later calls only backfill ``total``."""
        if total is not None:
            self.total = int(total)
        if self._started:
            return
        self._started = True
        self._t_started = self._clock()
        merged = dict(self.context)
        merged.update(fields)
        if self.total is not None:
            merged["total"] = self.total
        self.emit("run_started", **merged)

    def point_done(self, **fields) -> None:
        """Count one finished unit of work and emit its progress event."""
        self.done += 1
        progress = self._progress_fields(self._clock())
        progress.update(fields)
        self.emit("point_done", **progress)

    def maybe_heartbeat(self, **fields) -> bool:
        """Emit ``heartbeat`` if the stream has been silent long enough.

        Call sites sprinkle this inside long inner loops; the interval
        guard (against the *last emitted event* of any type) keeps the
        file quiet while point_done traffic is already flowing.
        """
        now = self._clock()
        last = self._t_last_emit
        if last is not None and now - last < self.heartbeat_s:
            return False
        progress = self._progress_fields(now)
        progress.update(fields)
        self.emit("heartbeat", **progress)
        return True

    def run_finished(self, **fields) -> None:
        """Emit ``run_finished`` once, with final progress fields."""
        if self._finished:
            return
        self._finished = True
        progress = self._progress_fields(self._clock())
        progress.update(fields)
        self.emit("run_finished", **progress)

    def close(self) -> None:
        """Finish the stream (emitting ``run_finished`` if still open)."""
        if self._started and not self._finished:
            self.run_finished()
        self._fh.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullEventWriter:
    """Do-nothing event writer: the zero-overhead default.

    >>> from repro.observability.telemetry import get_events
    >>> get_events().enabled
    False
    """

    enabled = False
    total = None
    done = 0

    def emit(self, event, **fields):
        return None

    def run_started(self, total=None, **fields):
        return None

    def point_done(self, **fields):
        return None

    def maybe_heartbeat(self, **fields):
        return False

    def run_finished(self, **fields):
        return None

    def close(self):
        return None


#: The process-wide disabled event writer (default active writer).
NULL_EVENTS = NullEventWriter()

_ACTIVE = NULL_EVENTS
_ACTIVE_LOCK = threading.Lock()


def get_events():
    """The active event writer (:class:`NullEventWriter` by default)."""
    return _ACTIVE


def set_events(writer):
    """Install ``writer`` as active; returns the previous one.

    Pass None to restore the disabled default.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = writer if writer is not None else NULL_EVENTS
    return previous


@contextmanager
def use_events(writer):
    """Scope an active event writer; restores the previous one on exit."""
    previous = set_events(writer)
    try:
        yield writer
    finally:
        set_events(previous)


# ---------------------------------------------------------------------------
# readers


def read_events(path, strict: bool = False) -> list:
    """Parse a JSONL event file into a list of event dicts.

    A malformed *final* line is tolerated by default: it is exactly what
    a writer killed mid-append leaves behind, and everything before it
    is intact — the tail is dropped.  Malformed lines anywhere else (or
    any malformed line with ``strict=True``) raise ``ValueError``.
    """
    with open(path) as fh:
        lines = fh.read().split("\n")
    events = []
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            events.append(json.loads(stripped))
        except ValueError:
            trailing = any(rest.strip() for rest in lines[i + 1:])
            if strict or trailing:
                raise ValueError(
                    f"{path}:{i + 1}: malformed event line"
                ) from None
            break  # truncated tail: the writer died mid-append
    return events


def validate_events(events) -> list:
    """Schema/ordering violations of an event list (empty == valid).

    Checks: required fields (``v``/``seq``/``t``/``event``), known event
    types, strictly increasing ``seq``, ``run_started`` first when
    present, and nothing after ``run_finished``.
    """
    errors = []
    prev_seq = None
    finished_at = None
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        for key in ("v", "seq", "t", "event"):
            if key not in ev:
                errors.append(f"event {i}: missing field {key!r}")
        name = ev.get("event")
        if name is not None and name not in EVENT_TYPES:
            errors.append(f"event {i}: unknown type {name!r}")
        seq = ev.get("seq")
        if isinstance(seq, int):
            if prev_seq is not None and seq <= prev_seq:
                errors.append(
                    f"event {i}: seq {seq} not increasing (prev {prev_seq})"
                )
            prev_seq = seq
        if name == "run_started" and i != 0:
            errors.append(f"event {i}: run_started not first")
        if finished_at is not None:
            errors.append(
                f"event {i}: {name!r} after run_finished "
                f"(event {finished_at})"
            )
        if name == "run_finished":
            finished_at = i
    return errors


def summarize_events(events) -> dict:
    """Aggregate an event list into the dict ``repro top`` renders.

    Tolerant of partial streams: a live (or killed) run simply has no
    ``run_finished`` yet and ``finished`` stays False.
    """
    summary = {
        "n_events": len(events),
        "by_type": {},
        "started": None,
        "finished": False,
        "done": 0,
        "total": None,
        "frac": None,
        "elapsed_s": None,
        "eta_s": None,
        "t_first": None,
        "t_last": None,
        "last_event": None,
        "points": [],
        "degradations": [],
        "stragglers": [],
        "chunks_retired": 0,
        "heartbeats": 0,
        "waves": 0,
    }
    for ev in events:
        name = ev.get("event")
        summary["by_type"][name] = summary["by_type"].get(name, 0) + 1
        t = ev.get("t")
        if isinstance(t, (int, float)):
            if summary["t_first"] is None:
                summary["t_first"] = t
            summary["t_last"] = t
        summary["last_event"] = name
        for key in ("done", "total", "frac", "elapsed_s", "eta_s"):
            if key in ev and ev[key] is not None:
                summary[key] = ev[key]
        if name == "run_started":
            summary["started"] = {
                k: v for k, v in ev.items()
                if k not in ("v", "seq", "t", "event")
            }
        elif name == "point_done":
            summary["points"].append(ev)
        elif name == "degradation":
            summary["degradations"].append(ev)
        elif name == "straggler":
            summary["stragglers"].append(ev)
        elif name == "chunk_retired":
            summary["chunks_retired"] += 1
        elif name == "wave_done":
            summary["waves"] += 1
        elif name == "heartbeat":
            summary["heartbeats"] += 1
        elif name == "run_finished":
            summary["finished"] = True
    return summary


def _fmt_s(seconds) -> str:
    if seconds is None or not isinstance(seconds, (int, float)) \
            or not math.isfinite(seconds):
        return "-"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def render_event_summary(summary, now=None, width: int = 28) -> str:
    """Human view of :func:`summarize_events` (shared by top and doctor)."""
    from ..io import format_table

    lines = []
    started = summary.get("started") or {}
    run_bits = " ".join(
        f"{k}={started[k]}" for k in sorted(started) if k != "total"
    )
    lines.append(f"run      : {run_bits or '(no run_started event)'}")

    done = summary.get("done") or 0
    total = summary.get("total")
    frac = summary.get("frac")
    if frac is None and total:
        frac = done / total
    if total:
        filled = int(round((frac or 0.0) * width))
        bar = "#" * filled + "." * (width - filled)
        lines.append(
            f"progress : [{bar}] {done}/{total} ({(frac or 0) * 100:.0f}%)"
            f"  elapsed {_fmt_s(summary.get('elapsed_s'))}"
            f"  eta {_fmt_s(summary.get('eta_s'))}"
        )
    else:
        lines.append(
            f"progress : {done} done"
            f"  elapsed {_fmt_s(summary.get('elapsed_s'))}"
        )

    points = summary.get("points") or []
    if points:
        rows = []
        for ev in points[-12:]:
            rows.append([
                f"{ev.get('v_gate', float('nan')):+.3f}"
                if isinstance(ev.get("v_gate"), (int, float)) else "-",
                f"{ev.get('v_drain', float('nan')):+.3f}"
                if isinstance(ev.get("v_drain"), (int, float)) else "-",
                f"{ev.get('current_a', float('nan')):.3e}"
                if isinstance(ev.get("current_a"), (int, float)) else "-",
                "yes" if ev.get("converged") else "no",
                "resume" if ev.get("resumed") else "",
            ])
        lines.append("")
        lines.append(format_table(
            ["V_G (V)", "V_D (V)", "I (A)", "conv", ""],
            rows, title=f"last {len(rows)} of {len(points)} points",
        ))

    degradations = summary.get("degradations") or []
    if degradations:
        rows = [
            [str(ev.get("stage", "?")), str(ev.get("detail", ""))[:48],
             str(ev.get("count", 1))]
            for ev in degradations[-8:]
        ]
        lines.append("")
        lines.append(format_table(
            ["stage", "detail", "n"], rows,
            title=f"degradations ({len(degradations)})",
        ))

    stragglers = summary.get("stragglers") or []
    lines.append("")
    lines.append(
        f"stragglers {len(stragglers)} | "
        f"chunks retired {summary.get('chunks_retired', 0)} | "
        f"heartbeats {summary.get('heartbeats', 0)} | "
        f"events {summary.get('n_events', 0)}"
    )
    if summary.get("finished"):
        lines.append(
            f"status   : finished ({_fmt_s(summary.get('elapsed_s'))})"
        )
    else:
        age = None
        t_last = summary.get("t_last")
        if now is not None and isinstance(t_last, (int, float)):
            age = max(now - t_last, 0.0)
        suffix = f" (last event {_fmt_s(age)} ago)" if age is not None else ""
        lines.append(f"status   : in flight{suffix}")
    return "\n".join(lines)
