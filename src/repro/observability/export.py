"""Trace export layers: Chrome trace format JSON and flat metrics.

Two consumers are served:

* **Humans** — :func:`chrome_trace` emits the Trace Event Format that
  ``chrome://tracing`` / Perfetto load directly: one complete ("ph": "X")
  event per closed span, with the span's measured flops in ``args``,
  ranks mapped to ``pid`` rows and threads to ``tid`` rows, so a traced
  sweep renders as the per-rank/per-task timeline of the paper's Figure-
  style Gantt charts.
* **Machines** — :func:`flat_metrics` flattens the same trace into a
  single-level dict (``"flops.block_lu.factor"``, ``"time.rgf.solve_s"``,
  ``"sustained_flops"``, ...) for benchmark baselines (``BENCH_*.json``)
  and CI artifacts.
"""

from __future__ import annotations

import json

from .report import PerfReport

__all__ = ["chrome_trace", "write_chrome_trace", "flat_metrics"]


def chrome_trace(tracer) -> dict:
    """Chrome Trace-Event-Format view of a tracer's completed spans.

    Returns the JSON *object* form: ``{"traceEvents": [...],
    "displayTimeUnit": "ms", "otherData": {...}}``.  Timestamps are
    microseconds relative to the tracer's epoch; each event is a complete
    event (``"ph": "X"``) carrying the span's own and cumulative flops.
    Open (unclosed) spans are not exported.

    Lane assignment makes one unified Gantt chart of a whole run: spans
    with a ``rank`` attribute land in ``pid == rank`` (the distributed
    timeline), spans merged back from process-backend workers (a
    ``worker`` attribute, see :mod:`repro.observability.telemetry`) each
    get their own ``pid`` lane starting at 1000, and parent-side spans
    stay in ``pid 0``.  Worker span timestamps were clock-offset aligned
    at merge time (:meth:`Tracer.absorb`), so the lanes share one time
    axis.  When worker lanes exist, ``process_name`` metadata events
    (``"ph": "M"``) label them; traces without merged workers contain
    only ``"X"`` events, exactly as before.

    Example
    -------
    >>> from repro.observability import Tracer
    >>> t = Tracer()
    >>> with t.span("rgf", category="kernel"):
    ...     t.add_flops("block_lu.factor", 64.0)
    >>> doc = chrome_trace(t)
    >>> doc["traceEvents"][0]["name"], doc["traceEvents"][0]["ph"]
    ('rgf', 'X')
    >>> doc["otherData"]["counted_flops"]
    64.0
    """
    epoch = getattr(tracer, "epoch", 0.0)
    events = []
    worker_lanes: dict = {}  # worker label -> pid (first-seen order)
    for span in tracer.spans:
        if span.t_end is None:  # pragma: no cover - open spans skipped
            continue
        args = {
            "flops": span.total_flops,
            "own_flops": span.own_flops,
            "depth": span.depth,
        }
        for key, value in span.attrs.items():
            args[str(key)] = value if _jsonable(value) else repr(value)
        rank = span.attrs.get("rank")
        worker = span.attrs.get("worker")
        if rank is not None:
            pid = int(rank)
        elif worker is not None:
            pid = worker_lanes.get(worker)
            if pid is None:
                pid = worker_lanes[worker] = 1000 + len(worker_lanes)
        else:
            pid = 0
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": (span.t_start - epoch) * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": pid,
                "tid": span.thread,
                "args": args,
            }
        )
    if worker_lanes:
        # Chrome's own convention for metadata records: ph "M" with
        # cat "__metadata" at ts 0 (dur included so every event in the
        # document carries the same key set)
        def _process_name(pid, label):
            return {
                "name": "process_name",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0.0,
                "dur": 0.0,
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }

        metadata = [_process_name(0, "parent")]
        for worker, pid in worker_lanes.items():
            metadata.append(_process_name(pid, f"worker {worker}"))
        events = metadata + events
    report = PerfReport.from_tracer(tracer)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": report.to_dict(),
    }


def write_chrome_trace(tracer, path) -> dict:
    """Serialise :func:`chrome_trace` to ``path``; returns the document."""
    doc = chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return doc


def flat_metrics(tracer) -> dict:
    """One-level metrics dict of a traced run (for baselines and CI).

    Keys: ``wall_time_s``, ``counted_flops``, ``sustained_flops``,
    ``n_spans``, ``n_tasks``, ``flops.<kernel>`` per measured kernel and
    ``time.<span name>_s`` per span name.

    Example
    -------
    >>> from repro.observability import Tracer
    >>> t = Tracer()
    >>> with t.span("wf.solve"):
    ...     t.add_flops("wf.factor", 8.0)
    >>> m = flat_metrics(t)
    >>> m["flops.wf.factor"], "time.wf.solve_s" in m
    (8.0, True)
    """
    report = PerfReport.from_tracer(tracer)
    out = {
        "wall_time_s": report.wall_time_s,
        "counted_flops": report.counted_flops,
        "sustained_flops": report.sustained_flops,
        "n_spans": report.n_spans,
        "n_tasks": report.n_tasks,
    }
    for kernel, flops in sorted(report.kernel_flops.items()):
        out[f"flops.{kernel}"] = flops
    for name, seconds in sorted(report.phase_seconds.items()):
        out[f"time.{name}_s"] = seconds
    for rank, seconds in sorted(report.rank_seconds.items()):
        out[f"rank.{rank}_s"] = seconds
    return out


def _jsonable(value) -> bool:
    return isinstance(value, (str, int, float, bool, type(None)))
