"""Cross-validation of analytic flop formulas against instrumented runs.

:mod:`repro.perf.flops` claims its formulas mirror the implemented
algorithms operation-for-operation.  This module makes that claim
*checkable*: each ``validate_*`` function runs a real kernel at a small
size under a fresh :class:`repro.observability.Tracer`, reads back the
flops the instrumented call sites actually reported, evaluates the
analytic formula for the same problem, and returns both numbers in a
:class:`FlopValidation`.  The counts must agree **exactly** (all terms
are integer-valued doubles far below 2^53, so float summation is exact);
``tests/test_observability.py`` asserts ``measured == analytic`` for the
RGF, WF and Sancho-Rubio kernels at several sizes.

Imports of the kernel packages are deferred into the function bodies:
``repro.solvers`` itself imports :mod:`repro.observability` for its
instrumentation, so a module-level import here would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..perf.flops import (
    rgf_solve_flops,
    sancho_rubio_flops,
    wf_backsub_flops,
    wf_factor_flops,
)
from .tracer import Tracer, use_tracer

__all__ = [
    "FlopValidation",
    "validate_rgf_flops",
    "validate_wf_flops",
    "validate_sancho_rubio_flops",
    "validate_batched_rgf_flops",
    "validate_batched_wf_flops",
    "validate_batched_sancho_rubio_flops",
    "validate_flops",
]


@dataclass
class FlopValidation:
    """One analytic-vs-measured comparison of a kernel's flop count.

    Attributes
    ----------
    kernel : str
        Which kernel was exercised ("rgf", "wf", "sancho_rubio").
    analytic : float
        The :mod:`repro.perf.flops` formula evaluated for this problem.
    measured : float
        The flops the instrumented call sites reported to the tracer.
    params : dict
        Problem dimensions (n_blocks, block size, iterations, ...).

    Example
    -------
    >>> v = FlopValidation("rgf", 1024.0, 1024.0, {"n_blocks": 4})
    >>> v.matches
    True
    """

    kernel: str
    analytic: float
    measured: float
    params: dict = field(default_factory=dict)

    @property
    def matches(self) -> bool:
        """Exact equality of the analytic and instrumented counts."""
        return self.measured == self.analytic

    def __str__(self):
        status = "OK" if self.matches else "MISMATCH"
        return (
            f"{self.kernel}: analytic {self.analytic:.0f} vs measured "
            f"{self.measured:.0f} [{status}] {self.params}"
        )


def _chain_hamiltonian(n_blocks: int, m: int, e0: float = 0.0, t: float = 1.0):
    """Uniform 1-D chain of ``n_blocks * m`` sites folded into m-site slabs.

    The textbook transport oracle: every diagonal block is the m-site
    chain segment, every coupling block carries the single bond between
    consecutive segments, and the band covers [e0 - 2t, e0 + 2t].
    """
    import numpy as np

    from ..tb.hamiltonian import BlockTridiagonalHamiltonian

    h00 = e0 * np.eye(m, dtype=complex)
    for i in range(m - 1):
        h00[i, i + 1] = h00[i + 1, i] = -t
    h01 = np.zeros((m, m), dtype=complex)
    h01[m - 1, 0] = -t
    return BlockTridiagonalHamiltonian(
        [h00.copy() for _ in range(n_blocks)],
        [h01.copy() for _ in range(n_blocks - 1)],
    )


def validate_rgf_flops(
    n_blocks: int = 4, block_size: int = 3, energy: float = 0.5
) -> FlopValidation:
    """Run a real RGF solve and compare its block-LU flops to the formula.

    The instrumented :class:`repro.solvers.BlockTridiagLU` reports its
    factorisation, block-column and selected-inversion flops; their sum
    must equal :func:`repro.perf.flops.rgf_solve_flops` exactly (the
    contact surface GFs are validated separately).

    Example
    -------
    >>> validate_rgf_flops(n_blocks=3, block_size=2).matches
    True
    """
    from ..negf.rgf import RGFSolver

    H = _chain_hamiltonian(n_blocks, block_size)
    tracer = Tracer()
    with use_tracer(tracer):
        RGFSolver(H).solve(energy)
    counts = tracer.counter.counts
    measured = (
        counts.get("block_lu.factor", 0.0)
        + counts.get("block_lu.column", 0.0)
        + counts.get("block_lu.diagonal", 0.0)
    )
    return FlopValidation(
        kernel="rgf",
        analytic=rgf_solve_flops(n_blocks, block_size),
        measured=measured,
        params={"n_blocks": n_blocks, "block_size": block_size,
                "energy": energy},
    )


def validate_wf_flops(
    n_blocks: int = 4, block_size: int = 3, energy: float = 0.5
) -> FlopValidation:
    """Run a real WF (QTBM) solve and compare its charged flops.

    The wave-function kernel charges its sparse factorisation and the
    per-channel back-substitutions by the Gordon Bell convention
    (analytic cost of the banded algorithm, evaluated at the *actual*
    block sizes and injection counts); the formula side uses the same
    injection counts read off the contact self-energies.

    Example
    -------
    >>> validate_wf_flops(n_blocks=3, block_size=2).matches
    True
    """
    from ..wf.qtbm import WFSolver

    H = _chain_hamiltonian(n_blocks, block_size)
    solver = WFSolver(H)
    # deterministic: the same self-energies the traced solve recomputes
    sig_l, sig_r = solver.self_energies(energy)
    n_rhs = (
        solver._injection(sig_l).shape[1] + solver._injection(sig_r).shape[1]
    )
    tracer = Tracer()
    with use_tracer(tracer):
        solver.solve(energy)
    counts = tracer.counter.counts
    measured = counts.get("wf.factor", 0.0) + counts.get("wf.backsub", 0.0)
    analytic = wf_factor_flops(n_blocks, block_size) + wf_backsub_flops(
        n_blocks, block_size, n_rhs
    )
    return FlopValidation(
        kernel="wf",
        analytic=analytic,
        measured=measured,
        params={"n_blocks": n_blocks, "block_size": block_size,
                "energy": energy, "n_rhs": n_rhs},
    )


def validate_sancho_rubio_flops(
    block_size: int = 4, energy: float = 0.3
) -> FlopValidation:
    """Run a real decimation and compare against the per-iteration formula.

    The iteration count is a *measured* quantity (returned by
    :func:`repro.negf.sancho_rubio`); the analytic side charges exactly
    that many decimation steps plus the final surface inversion.

    Example
    -------
    >>> validate_sancho_rubio_flops(block_size=2).matches
    True
    """
    from ..negf.surface_gf import sancho_rubio

    H = _chain_hamiltonian(2, block_size)
    tracer = Tracer()
    with use_tracer(tracer):
        _, n_iter = sancho_rubio(energy, H.diagonal[0], H.upper[0])
    return FlopValidation(
        kernel="sancho_rubio",
        analytic=sancho_rubio_flops(block_size, n_iter),
        measured=tracer.counter.counts.get("surface_gf.sancho", 0.0),
        params={"block_size": block_size, "energy": energy,
                "n_iterations": n_iter},
    )


def _batch_energies(n_energies: int):
    """Deterministic in-band energy batch away from the chain band edges."""
    import numpy as np

    return np.linspace(-1.2, 1.2, n_energies)


def validate_batched_rgf_flops(
    n_blocks: int = 4, block_size: int = 3, n_energies: int = 6
) -> FlopValidation:
    """Batched RGF solve: block-LU flops must be B x the per-point formula.

    :class:`repro.solvers.BatchedBlockTridiagLU` charges exactly
    ``batch_size`` times the scalar-class counts to the same kernel
    names, so one ``solve_batch`` over B energies must measure
    ``B * rgf_solve_flops``.

    Example
    -------
    >>> validate_batched_rgf_flops(n_blocks=3, block_size=2).matches
    True
    """
    from ..negf.rgf import RGFSolver

    H = _chain_hamiltonian(n_blocks, block_size)
    tracer = Tracer()
    with use_tracer(tracer):
        RGFSolver(H).solve_batch(_batch_energies(n_energies))
    counts = tracer.counter.counts
    measured = (
        counts.get("block_lu.factor", 0.0)
        + counts.get("block_lu.column", 0.0)
        + counts.get("block_lu.diagonal", 0.0)
    )
    return FlopValidation(
        kernel="rgf_batched",
        analytic=n_energies * rgf_solve_flops(n_blocks, block_size),
        measured=measured,
        params={"n_blocks": n_blocks, "block_size": block_size,
                "n_energies": n_energies},
    )


def validate_batched_wf_flops(
    n_blocks: int = 4, block_size: int = 3, n_energies: int = 6
) -> FlopValidation:
    """Batched WF solve: charges must sum the per-energy analytic costs.

    The batched path executes on the (uninstrumented) stacked block-LU
    but charges ``wf.factor``/``wf.backsub`` by the same Gordon Bell
    convention as the per-point path — the banded-algorithm cost at the
    *actual* per-energy injection counts.

    Example
    -------
    >>> validate_batched_wf_flops(n_blocks=3, block_size=2).matches
    True
    """
    from ..wf.qtbm import WFSolver

    H = _chain_hamiltonian(n_blocks, block_size)
    solver = WFSolver(H)
    energies = _batch_energies(n_energies)
    analytic = 0.0
    for e in energies:
        sig_l, sig_r = solver.self_energies(float(e))
        n_rhs = (
            solver._injection(sig_l).shape[1]
            + solver._injection(sig_r).shape[1]
        )
        analytic += wf_factor_flops(n_blocks, block_size)
        analytic += wf_backsub_flops(n_blocks, block_size, n_rhs)
    tracer = Tracer()
    with use_tracer(tracer):
        solver.solve_batch(energies)
    counts = tracer.counter.counts
    measured = counts.get("wf.factor", 0.0) + counts.get("wf.backsub", 0.0)
    return FlopValidation(
        kernel="wf_batched",
        analytic=analytic,
        measured=measured,
        params={"n_blocks": n_blocks, "block_size": block_size,
                "n_energies": n_energies},
    )


def validate_batched_sancho_rubio_flops(
    block_size: int = 4, n_energies: int = 6
) -> FlopValidation:
    """Batched decimation: flops must sum the per-energy iteration costs.

    The active-set compaction gives every energy exactly its scalar
    iteration sequence, so the charge is ``sum_E sancho_rubio_flops(m,
    it_E)`` with the *measured* per-energy iteration counts.

    Example
    -------
    >>> validate_batched_sancho_rubio_flops(block_size=2).matches
    True
    """
    from ..negf.surface_gf import sancho_rubio_batch

    H = _chain_hamiltonian(2, block_size)
    energies = _batch_energies(n_energies)
    tracer = Tracer()
    with use_tracer(tracer):
        _, iters = sancho_rubio_batch(energies, H.diagonal[0], H.upper[0])
    analytic = sum(
        sancho_rubio_flops(block_size, int(it)) for it in iters
    )
    return FlopValidation(
        kernel="sancho_rubio_batched",
        analytic=float(analytic),
        measured=tracer.counter.counts.get("surface_gf.sancho", 0.0),
        params={"block_size": block_size, "n_energies": n_energies,
                "iterations": [int(i) for i in iters]},
    )


def validate_flops(verbose: bool = False) -> list:
    """Exercise every instrumented kernel at several small sizes.

    Returns the list of :class:`FlopValidation` results (one per kernel
    per size); ``all(v.matches for v in validate_flops())`` is the
    invariant the test suite pins.

    Example
    -------
    >>> all(v.matches for v in validate_flops())
    True
    """
    validations = [
        validate_rgf_flops(n_blocks=3, block_size=2),
        validate_rgf_flops(n_blocks=5, block_size=3),
        validate_rgf_flops(n_blocks=4, block_size=4, energy=0.8),
        validate_wf_flops(n_blocks=3, block_size=2),
        validate_wf_flops(n_blocks=5, block_size=3),
        validate_sancho_rubio_flops(block_size=2),
        validate_sancho_rubio_flops(block_size=4, energy=0.7),
        validate_batched_rgf_flops(n_blocks=3, block_size=2, n_energies=5),
        validate_batched_rgf_flops(n_blocks=4, block_size=3, n_energies=7),
        validate_batched_wf_flops(n_blocks=3, block_size=2, n_energies=5),
        validate_batched_wf_flops(n_blocks=4, block_size=3, n_energies=6),
        validate_batched_sancho_rubio_flops(block_size=3, n_energies=6),
    ]
    if verbose:  # pragma: no cover - console convenience
        for v in validations:
            print(v)
    return validations
