"""Fermi-Dirac statistics: occupation functions and Fermi-Dirac integrals.

The transport kernels integrate the transmission and spectral functions
against Fermi factors of the two contacts; the semiclassical charge model in
the Poisson solver needs the Fermi-Dirac integrals of order 1/2 (3-D), 0
(2-D) and -1/2 (derivative).  Everything here is vectorised over numpy
arrays and numerically safe for arguments of any magnitude.
"""

from __future__ import annotations

import numpy as np

from .constants import KB_EV

__all__ = [
    "fermi_dirac",
    "dfermi_dE",
    "fermi_window",
    "fermi_integral_half",
    "fermi_integral_zero",
    "fermi_integral_minus_half",
    "inverse_fermi_integral_half",
]


def fermi_dirac(energy, mu, kT):
    """Fermi-Dirac occupation ``f(E) = 1 / (1 + exp((E - mu)/kT))``.

    Vectorised and overflow-safe: for ``kT == 0`` a step function is
    returned (with value 0.5 exactly at ``E == mu``).

    Parameters
    ----------
    energy : array_like
        Energies E (eV).
    mu : float
        Chemical potential (eV).
    kT : float
        Thermal energy (eV), must be >= 0.
    """
    energy = np.asarray(energy, dtype=float)
    if kT < 0.0:
        raise ValueError(f"kT must be >= 0, got {kT}")
    if kT == 0.0:
        out = np.where(energy < mu, 1.0, 0.0)
        out = np.where(energy == mu, 0.5, out)
        return out
    x = (energy - mu) / kT
    # Piecewise-stable evaluation: avoid exp overflow for large |x|.
    out = np.empty_like(x)
    pos = x > 0
    out[pos] = np.exp(-x[pos]) / (1.0 + np.exp(-x[pos]))
    out[~pos] = 1.0 / (1.0 + np.exp(x[~pos]))
    return out


def dfermi_dE(energy, mu, kT):
    """Derivative ``df/dE`` of the Fermi function (negative, units 1/eV).

    ``-df/dE`` is the thermal broadening kernel with unit integral; it is
    used to window the energy grid around the contact chemical potentials.
    """
    energy = np.asarray(energy, dtype=float)
    if kT <= 0.0:
        raise ValueError(f"kT must be > 0 for dfermi_dE, got {kT}")
    x = np.abs(energy - mu) / kT
    # sech^2 form, stable: 1/(2cosh(x/2))^2 = e^{-x} / (1+e^{-x})^2 for x>=0.
    e = np.exp(-x)
    return -e / (kT * (1.0 + e) ** 2)


def fermi_window(energy, mu_left, mu_right, kT):
    """Current window ``fL(E) - fR(E)`` between two contacts."""
    return fermi_dirac(energy, mu_left, kT) - fermi_dirac(energy, mu_right, kT)


def _fd_integral_series(eta: np.ndarray, order: float) -> np.ndarray:
    """Non-degenerate series for F_j(eta), eta << 0 (converges fast)."""
    # F_j(eta) ~ sum_{n>=1} (-1)^{n+1} e^{n eta} / n^{j+1}
    out = np.zeros_like(eta)
    for n in range(1, 30):
        term = (-1.0) ** (n + 1) * np.exp(n * eta) / n ** (order + 1.0)
        out += term
    return out


def fermi_integral_half(eta):
    """Complete Fermi-Dirac integral of order 1/2, normalised.

    ``F_{1/2}(eta) = (1/Gamma(3/2)) * int_0^inf sqrt(x) / (1 + exp(x-eta)) dx``

    so that ``F_{1/2}(eta) -> exp(eta)`` as ``eta -> -inf`` and
    ``F_{1/2}(eta) -> (4/(3 sqrt(pi))) eta^{3/2}`` as ``eta -> +inf``.
    Used for the 3-D semiclassical electron density
    ``n = Nc * F_{1/2}((mu - Ec)/kT)``.

    The rational approximation follows the minimax fits of
    Blakemore (Solid-State Electron. 25, 1067 (1982)) in the common
    piecewise form; accuracy is better than 0.4% everywhere, which is ample
    for a device Poisson predictor.
    """
    eta = np.asarray(eta, dtype=float)
    out = np.empty_like(eta)
    lo = eta < -8.0
    hi = eta > 20.0
    mid = ~(lo | hi)
    out[lo] = _fd_integral_series(eta[lo], 0.5)
    # Degenerate Sommerfeld expansion for very large eta.
    eh = eta[hi]
    out[hi] = (4.0 / (3.0 * np.sqrt(np.pi))) * eh**1.5 * (
        1.0 + np.pi**2 / (8.0 * eh**2)
    )
    # Blakemore/Bednarczyk style fit in the transition region.
    em = eta[mid]
    mu_fit = em**4 + 50.0 + 33.6 * em * (1.0 - 0.68 * np.exp(-0.17 * (em + 1.0) ** 2))
    xi = 3.0 * np.sqrt(np.pi) / (4.0 * mu_fit**0.375)
    out[mid] = 1.0 / (np.exp(-em) + xi)
    return out


def fermi_integral_zero(eta):
    """Fermi-Dirac integral of order 0: ``F_0(eta) = ln(1 + exp(eta))``.

    Exact closed form; used for 2-D subband densities.  Evaluated stably.
    """
    eta = np.asarray(eta, dtype=float)
    return np.logaddexp(0.0, eta)


def fermi_integral_minus_half(eta):
    """Fermi-Dirac integral of order -1/2 (= d F_{1/2} / d eta).

    Computed by analytic differentiation of the same piecewise fit used in
    :func:`fermi_integral_half` so that Newton iterations on the Poisson
    charge model see a Jacobian consistent with the residual.
    """
    eta = np.asarray(eta, dtype=float)
    out = np.empty_like(eta)
    lo = eta < -8.0
    hi = eta > 20.0
    mid = ~(lo | hi)
    out[lo] = _fd_integral_series(eta[lo], -0.5)
    eh = eta[hi]
    out[hi] = (2.0 / np.sqrt(np.pi)) * np.sqrt(eh) * (1.0 - np.pi**2 / (24.0 * eh**2))
    # Derivative of the mid-range fit (chain rule on 1/(e^-x + xi(x))).
    em = eta[mid]
    mu_fit = em**4 + 50.0 + 33.6 * em * (1.0 - 0.68 * np.exp(-0.17 * (em + 1.0) ** 2))
    dmu = (
        4.0 * em**3
        + 33.6 * (1.0 - 0.68 * np.exp(-0.17 * (em + 1.0) ** 2))
        + 33.6 * em * (0.68 * 0.34 * (em + 1.0) * np.exp(-0.17 * (em + 1.0) ** 2))
    )
    xi = 3.0 * np.sqrt(np.pi) / (4.0 * mu_fit**0.375)
    dxi = -0.375 * xi / mu_fit * dmu
    denom = np.exp(-em) + xi
    out[mid] = (np.exp(-em) - dxi) / denom**2
    return out


def inverse_fermi_integral_half(value, tol: float = 1e-10, max_iter: int = 100):
    """Invert ``F_{1/2}``: find eta with ``F_{1/2}(eta) = value`` (Newton).

    Needed to initialise the Poisson potential from a target doping density.
    ``value`` must be positive.
    """
    value = np.asarray(value, dtype=float)
    if np.any(value <= 0.0):
        raise ValueError("fermi_integral_half is positive; value must be > 0")
    # Initial guess: non-degenerate limit eta = ln(value), degenerate limit
    # eta = (3 sqrt(pi) value / 4)^(2/3); blend smoothly.
    eta = np.where(
        value < 1.0,
        np.log(value),
        (3.0 * np.sqrt(np.pi) * value / 4.0) ** (2.0 / 3.0),
    )
    for _ in range(max_iter):
        f = fermi_integral_half(eta) - value
        df = fermi_integral_minus_half(eta)
        step = f / np.maximum(df, 1e-300)
        eta = eta - step
        if np.all(np.abs(step) < tol * (1.0 + np.abs(eta))):
            break
    return eta
