"""Physical constants, Fermi statistics and quadrature grids."""

from . import constants
from .constants import (
    HBAR2_OVER_2M0,
    HBAR_EV_S,
    KB_EV,
    KT_ROOM,
    Q_E,
    Q_OVER_H_A_PER_EV,
    T_ROOM,
    effective_mass_hopping,
    thermal_energy,
)
from .fermi import (
    dfermi_dE,
    fermi_dirac,
    fermi_integral_half,
    fermi_integral_minus_half,
    fermi_integral_zero,
    fermi_window,
    inverse_fermi_integral_half,
)
from .grids import (
    AdaptiveEnergyGrid,
    EnergyGrid,
    MomentumGrid,
    fermi_window_grid,
    trapezoid_weights,
    uniform_grid,
)

__all__ = [
    "constants",
    "HBAR2_OVER_2M0",
    "HBAR_EV_S",
    "KB_EV",
    "KT_ROOM",
    "Q_E",
    "Q_OVER_H_A_PER_EV",
    "T_ROOM",
    "effective_mass_hopping",
    "thermal_energy",
    "dfermi_dE",
    "fermi_dirac",
    "fermi_integral_half",
    "fermi_integral_minus_half",
    "fermi_integral_zero",
    "fermi_window",
    "inverse_fermi_integral_half",
    "AdaptiveEnergyGrid",
    "EnergyGrid",
    "MomentumGrid",
    "fermi_window_grid",
    "trapezoid_weights",
    "uniform_grid",
]
