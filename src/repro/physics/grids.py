"""Quadrature grids for the energy and transverse-momentum integrals.

A ballistic terminal current is a double integral

    I = (q/h) * sum_k w_k  int dE  T(E, k) (fL - fR)

and the charge is a similar integral of the spectral density.  OMEN spends
almost all of its petaflops on the (k, E) sample points of these integrals,
so the grid objects here are the unit of work for the parallel scheduler:
each :class:`EnergyGrid`/:class:`MomentumGrid` node maps to one independent
open-system solve.

Two energy-grid constructions are provided:

* :func:`fermi_window_grid` — uniform grid covering the union of the thermal
  windows of all contacts (the workhorse for current integration);
* :class:`AdaptiveEnergyGrid` — bisection refinement driven by a local
  interpolation-error estimate, which concentrates points on transmission
  resonances (the ablation partner of the uniform grid).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "EnergyGrid",
    "MomentumGrid",
    "adaptive_enabled",
    "fermi_window_grid",
    "uniform_grid",
    "AdaptiveEnergyGrid",
    "trapezoid_weights",
]


def adaptive_enabled(flag=None) -> bool:
    """Resolve an adaptive-quadrature request against ``$REPRO_ADAPTIVE``.

    Parameters
    ----------
    flag : bool or None
        An explicit request wins; ``None`` falls back to the environment
        variable (truthy values: ``1/true/yes/on``, case-insensitive).

    Returns
    -------
    bool
        Whether the adaptive energy mode should be the default.
    """
    if flag is not None:
        return bool(flag)
    raw = (os.environ.get("REPRO_ADAPTIVE") or "").strip().lower()
    return raw in ("1", "true", "yes", "on")


def trapezoid_weights(points: np.ndarray) -> np.ndarray:
    """Trapezoidal quadrature weights for sorted, possibly non-uniform points.

    For a single point the weight is 1 (the integral degenerates to a sample,
    used by single-energy diagnostics).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 1:
        raise ValueError("points must be one-dimensional")
    n = points.size
    if n == 0:
        raise ValueError("empty grid")
    if n == 1:
        return np.ones(1)
    if np.any(np.diff(points) <= 0):
        raise ValueError("points must be strictly increasing")
    w = np.zeros(n)
    d = np.diff(points)
    w[0] = d[0] / 2.0
    w[-1] = d[-1] / 2.0
    w[1:-1] = (d[:-1] + d[1:]) / 2.0
    return w


@dataclass(frozen=True)
class EnergyGrid:
    """A set of energy nodes with quadrature weights.

    Attributes
    ----------
    energies : ndarray
        Strictly increasing energy nodes (eV).
    weights : ndarray
        Quadrature weights (eV); ``integral f ~= sum(weights * f(energies))``.
    """

    energies: np.ndarray
    weights: np.ndarray

    def __post_init__(self):
        e = np.asarray(self.energies, dtype=float)
        w = np.asarray(self.weights, dtype=float)
        if e.shape != w.shape or e.ndim != 1:
            raise ValueError("energies and weights must be 1-D of equal size")
        object.__setattr__(self, "energies", e)
        object.__setattr__(self, "weights", w)

    def __len__(self) -> int:
        return self.energies.size

    def integrate(self, values) -> complex | float:
        """Quadrature of sampled values against this grid's weights."""
        values = np.asarray(values)
        if values.shape[0] != len(self):
            raise ValueError(
                f"values has leading dim {values.shape[0]}, grid has {len(self)}"
            )
        return np.tensordot(self.weights, values, axes=(0, 0))

    def restrict(self, emin: float, emax: float) -> "EnergyGrid":
        """Sub-grid of nodes inside [emin, emax], weights recomputed."""
        mask = (self.energies >= emin) & (self.energies <= emax)
        pts = self.energies[mask]
        if pts.size == 0:
            raise ValueError("restriction produced an empty grid")
        return EnergyGrid(pts, trapezoid_weights(pts))


def uniform_grid(emin: float, emax: float, n_points: int) -> EnergyGrid:
    """Uniform trapezoidal grid on [emin, emax]."""
    if n_points < 1:
        raise ValueError("need at least one point")
    if n_points == 1:
        return EnergyGrid(np.array([(emin + emax) / 2.0]), np.array([emax - emin]))
    if emax <= emin:
        raise ValueError(f"emax ({emax}) must exceed emin ({emin})")
    pts = np.linspace(emin, emax, n_points)
    return EnergyGrid(pts, trapezoid_weights(pts))


def fermi_window_grid(
    chemical_potentials: Sequence[float],
    kT: float,
    n_points: int = 101,
    n_kT: float = 10.0,
    band_bottom: float | None = None,
) -> EnergyGrid:
    """Uniform grid covering the thermal window of all contacts.

    The window spans ``[min(mu) - n_kT*kT, max(mu) + n_kT*kT]``, optionally
    clipped from below at ``band_bottom`` (no propagating states below the
    source-side band edge contribute to ballistic current).
    """
    mus = list(chemical_potentials)
    if not mus:
        raise ValueError("need at least one chemical potential")
    if kT <= 0:
        raise ValueError("kT must be > 0")
    lo = min(mus) - n_kT * kT
    hi = max(mus) + n_kT * kT
    if band_bottom is not None:
        lo = max(lo, band_bottom)
    if hi <= lo:
        hi = lo + kT  # degenerate window: keep a sliver so quadrature is sane
    return uniform_grid(lo, hi, n_points)


@dataclass
class AdaptiveEnergyGrid:
    """Bisection-refined energy grid driven by an interpolation error estimate.

    The grid starts from ``n_initial`` uniform nodes; each refinement pass
    evaluates the integrand midpoint of every interval and keeps bisecting
    intervals whose midpoint deviates from the linear interpolant by more
    than ``tol`` (absolute, in the integrand's units).  This is the standard
    way quantum-transport codes catch narrow resonances without paying for a
    globally fine grid.  Refinement *spreads*: an interval that passes the
    midpoint test is still split while an adjacent interval is failing, so
    a resonance whose midpoint value coincidentally lands on the linear
    interpolant cannot masquerade as converged (see :meth:`next_wave`).

    Two driving styles share one refinement engine:

    * **callable** — :meth:`refine` walks the waves internally, invoking
      the integrand only on energies *not yet* in :attr:`samples` (each
      node is evaluated exactly once, pinned by :attr:`n_evaluations`);
    * **wave** — the caller pulls node batches with :meth:`first_wave` /
      :meth:`next_wave`, solves them however it likes (e.g. through a
      parallel execution backend) and feeds the values back with
      :meth:`record`.  A node recorded as ``None`` (a quarantined solve)
      is excluded: the intervals touching it are retired instead of
      pinning refinement on an unsolvable point, and the node never
      appears in the final grid.

    Samples may be scalars or 1-D vectors (e.g. transmission *and*
    spectral density); the interval error is the max over components.
    """

    emin: float
    emax: float
    n_initial: int = 16
    tol: float = 1e-3
    max_points: int = 4096
    max_passes: int = 12
    samples: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.emax <= self.emin:
            raise ValueError("emax must exceed emin")
        if self.n_initial < 3:
            raise ValueError("need at least 3 initial points")
        self.n_evaluations = 0
        self._reset_waves()

    # -- wave engine ---------------------------------------------------

    def _reset_waves(self) -> None:
        self._accepted: set[float] = set()
        self._excluded: set[float] = set()
        self._active: list[tuple[float, float]] = []
        self._leaves: list[tuple[float, float]] = []
        self._pending: list[float] = []
        self._wave = 0
        self._budget_hit = False
        self._est_error = float("inf")
        self.node_counts: list[int] = []

    @property
    def wave_index(self) -> int:
        """Waves emitted so far (wave 0 is the initial uniform seed)."""
        return self._wave

    @property
    def est_error(self) -> float:
        """Max interpolation error seen while processing the last wave."""
        return self._est_error

    @property
    def n_nodes(self) -> int:
        """Accepted quadrature nodes so far (excluded nodes not counted)."""
        return len(self._accepted - self._excluded)

    @property
    def n_excluded(self) -> int:
        """Nodes quarantined out of the error estimator and the grid."""
        return len(self._excluded)

    @property
    def budget_hit(self) -> bool:
        """True once the ``max_points`` node budget stopped refinement."""
        return self._budget_hit

    def first_wave(self) -> list[float]:
        """Reset the engine and emit wave 0: the uniform seed nodes."""
        self._reset_waves()
        nodes = [float(e) for e in
                 np.linspace(self.emin, self.emax, self.n_initial)]
        self._accepted.update(nodes)
        self._active = list(zip(nodes[:-1], nodes[1:]))
        self._pending = nodes
        self.node_counts.append(self.n_nodes)
        return list(nodes)

    def record(self, energy: float, value) -> None:
        """Memoize one solved node; ``None`` quarantines it.

        Every node a wave emits must be recorded (from :attr:`samples`,
        a caller-side cache, or a fresh solve) before :meth:`next_wave`.
        """
        e = float(energy)
        if value is None:
            self._excluded.add(e)
            self.samples.pop(e, None)
        else:
            self.samples[e] = value

    def next_wave(self) -> list[float]:
        """Score the last wave's intervals and emit the next bisection wave.

        Intervals whose recorded midpoint deviates from the linear
        interpolant by more than ``tol`` are split (the midpoint joins
        the grid); intervals touching an excluded node are retired.
        Returns an empty list when everything is converged, the node
        budget (``max_points``) is exhausted, or ``max_passes`` waves
        have been emitted.

        A passing interval is still split when an *adjacent* active
        interval failed its own test (refinement spreading).  The
        midpoint test alone can be defeated by chord coincidence — a
        resonance positioned so the midpoint value happens to land on
        the linear interpolant of the endpoints looks converged while
        hiding the peak — but such a feature always leaks a large error
        into a neighbouring interval, whose failure vetoes the
        coincidence.
        """
        if len(self._accepted) >= self.max_points:
            self._budget_hit = True
        if self._budget_hit or self._wave > self.max_passes:
            self._leaves.extend(self._active)
            self._active = []
            self._pending = []
            return []
        if self._wave == 0:
            # wave 0 carried the seed nodes themselves; the intervals
            # between them are already active — just emit midpoints
            self._wave = 1
            return self._emit()
        # score every active interval first (None = quarantined endpoint
        # or midpoint: the interval is retired, never split)
        scored: list[tuple[float, float, float | None]] = []
        for a, b in self._active:
            mid = 0.5 * (a + b)
            if (
                a in self._excluded or b in self._excluded
                or mid in self._excluded
            ):
                scored.append((a, b, None))
            else:
                scored.append((a, b, self._interval_error(a, mid, b)))
        # then decide splits with the neighbour veto: _active is kept
        # sorted by energy, so adjacency is a shared endpoint at i +- 1
        split = [err is not None and err > self.tol for _, _, err in scored]
        for i, (a, b, err) in enumerate(scored):
            if err is None or split[i]:
                continue
            for j in (i - 1, i + 1):
                if 0 <= j < len(scored):
                    aj, bj, ej = scored[j]
                    if (
                        ej is not None and ej > self.tol
                        and (bj == a or aj == b)
                    ):
                        split[i] = True
                        break
        next_active: list[tuple[float, float]] = []
        worst = 0.0
        for i, (a, b, err) in enumerate(scored):
            if err is None:
                continue  # quarantined node: retire, don't pin refinement
            worst = max(worst, err)
            if split[i]:
                mid = 0.5 * (a + b)
                self._accepted.add(mid)
                next_active.append((a, mid))
                next_active.append((mid, b))
                if len(self._accepted) >= self.max_points:
                    self._budget_hit = True
                    # unscored intervals keep their solved midpoints as
                    # converged-leaf quadrature support
                    self._leaves.extend(
                        (x[0], x[1]) for x in scored[i + 1:]
                    )
                    break
            else:
                self._leaves.append((a, b))
        self._est_error = worst
        self._active = next_active
        self._wave += 1
        self.node_counts.append(self.n_nodes)
        if self._budget_hit or self._wave > self.max_passes:
            # refinement is truncated: the still-active intervals become
            # leaves (their midpoints may not have been solved yet)
            self._leaves.extend(self._active)
            self._active = []
            self._pending = []
            return []
        return self._emit()

    def _emit(self) -> list[float]:
        """Midpoints of the active intervals — the next wave's nodes."""
        self._pending = [0.5 * (a + b) for a, b in self._active]
        return list(self._pending)

    def _interval_error(self, a: float, mid: float, b: float) -> float:
        va = np.asarray(self.samples[a], dtype=float)
        vb = np.asarray(self.samples[b], dtype=float)
        vm = np.asarray(self.samples[mid], dtype=float)
        return float(np.max(np.abs(vm - 0.5 * (va + vb))))

    def grid(self) -> EnergyGrid:
        """Final :class:`EnergyGrid` over the refined node set.

        On the clean path the grid is a composite-Simpson rule over the
        converged leaf intervals: every leaf's midpoint was already
        solved to score the interval, so including it with Simpson
        weights upgrades the quadrature from O(h^2) to O(h^4) at zero
        extra solves.  A leaf whose midpoint was never solved (budget or
        pass-limit truncation) contributes trapezoid weights instead.
        When nodes were quarantined the engine falls back to trapezoid
        weights over the surviving accepted nodes — the reweighting
        semantics of the degradation ladder.
        """
        survivors = self._accepted - self._excluded
        if not survivors:
            raise ValueError("every adaptive node was quarantined")
        if self._excluded or not self._leaves:
            pts = np.array(sorted(survivors))
            return EnergyGrid(pts, trapezoid_weights(pts))
        weights: dict[float, float] = {}
        for a, b in sorted(self._leaves):
            mid = 0.5 * (a + b)
            h = b - a
            if mid in self.samples:
                weights[a] = weights.get(a, 0.0) + h / 6.0
                weights[mid] = weights.get(mid, 0.0) + 4.0 * h / 6.0
                weights[b] = weights.get(b, 0.0) + h / 6.0
            else:
                weights[a] = weights.get(a, 0.0) + 0.5 * h
                weights[b] = weights.get(b, 0.0) + 0.5 * h
        pts = np.array(sorted(weights))
        return EnergyGrid(pts, np.array([weights[p] for p in pts]))

    # -- callable driver -----------------------------------------------

    def refine(
        self,
        integrand: Callable[[float], float],
        max_passes: int | None = None,
    ) -> EnergyGrid:
        """Refine until the error estimate falls below ``tol`` everywhere.

        A thin driver over the wave engine: each wave's nodes are looked
        up in :attr:`samples` first, so the integrand is charged exactly
        once per unique energy — even across repeated :meth:`refine`
        calls on the same object (:attr:`n_evaluations` counts actual
        invocations).  Returns the final :class:`EnergyGrid`; sampled
        values are available via :meth:`sampled_values`.
        """
        if max_passes is not None:
            self.max_passes = int(max_passes)
        wave = self.first_wave()
        while wave:
            for e in wave:
                if e in self.samples:
                    continue  # memoized: never re-evaluate a solved node
                self.samples[e] = float(integrand(e))
                self.n_evaluations += 1
            wave = self.next_wave()
        return self.grid()

    def sampled_values(self, grid: EnergyGrid) -> np.ndarray:
        """Cached integrand values at the nodes of ``grid``."""
        return np.array([self.samples[e] for e in grid.energies])


@dataclass(frozen=True)
class MomentumGrid:
    """Transverse-momentum sample points with weights.

    For a device periodic in one transverse direction with period ``L``
    (ultra-thin-body films), the Brillouin zone ``[-pi/L, pi/L)`` is sampled
    on ``n_points`` nodes.  Time-reversal symmetry (T(k) = T(-k) in the
    ballistic coherent case) lets us fold onto ``[0, pi/L]`` with doubled
    weights, which :func:`MomentumGrid.irreducible` exploits — this is the
    "momentum parallelism" level of OMEN.

    For a nanowire (no transverse periodicity) use :meth:`gamma_only`.
    """

    k_points: np.ndarray
    weights: np.ndarray

    def __post_init__(self):
        k = np.atleast_1d(np.asarray(self.k_points, dtype=float))
        w = np.atleast_1d(np.asarray(self.weights, dtype=float))
        if k.shape != w.shape:
            raise ValueError("k_points and weights must have equal shape")
        if not np.isclose(w.sum(), 1.0):
            raise ValueError("momentum weights must sum to 1 (BZ average)")
        object.__setattr__(self, "k_points", k)
        object.__setattr__(self, "weights", w)

    def __len__(self) -> int:
        return self.k_points.size

    @staticmethod
    def gamma_only() -> "MomentumGrid":
        """Single Gamma point — nanowires and other non-periodic sections."""
        return MomentumGrid(np.array([0.0]), np.array([1.0]))

    @staticmethod
    def uniform(period_nm: float, n_points: int) -> "MomentumGrid":
        """Uniform BZ sampling (Monkhorst-Pack, Gamma-centred) of [-pi/L, pi/L)."""
        if n_points < 1:
            raise ValueError("need at least one k point")
        if period_nm <= 0:
            raise ValueError("period must be positive")
        kmax = np.pi / period_nm
        ks = -kmax + 2.0 * kmax * (np.arange(n_points) + 0.5) / n_points
        w = np.full(n_points, 1.0 / n_points)
        return MomentumGrid(ks, w)

    @staticmethod
    def irreducible(period_nm: float, n_points: int) -> "MomentumGrid":
        """Half-BZ sampling exploiting T(k)=T(-k); weights doubled off Gamma."""
        full = MomentumGrid.uniform(period_nm, n_points)
        ks, ws = [], []
        seen: dict[float, int] = {}
        for k, w in zip(full.k_points, full.weights):
            key = round(abs(k), 12)
            if key in seen:
                ws[seen[key]] += w
            else:
                seen[key] = len(ks)
                ks.append(abs(k))
                ws.append(w)
        order = np.argsort(ks)
        return MomentumGrid(np.array(ks)[order], np.array(ws)[order])
