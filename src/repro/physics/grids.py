"""Quadrature grids for the energy and transverse-momentum integrals.

A ballistic terminal current is a double integral

    I = (q/h) * sum_k w_k  int dE  T(E, k) (fL - fR)

and the charge is a similar integral of the spectral density.  OMEN spends
almost all of its petaflops on the (k, E) sample points of these integrals,
so the grid objects here are the unit of work for the parallel scheduler:
each :class:`EnergyGrid`/:class:`MomentumGrid` node maps to one independent
open-system solve.

Two energy-grid constructions are provided:

* :func:`fermi_window_grid` — uniform grid covering the union of the thermal
  windows of all contacts (the workhorse for current integration);
* :class:`AdaptiveEnergyGrid` — bisection refinement driven by a local
  interpolation-error estimate, which concentrates points on transmission
  resonances (the ablation partner of the uniform grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "EnergyGrid",
    "MomentumGrid",
    "fermi_window_grid",
    "uniform_grid",
    "AdaptiveEnergyGrid",
    "trapezoid_weights",
]


def trapezoid_weights(points: np.ndarray) -> np.ndarray:
    """Trapezoidal quadrature weights for sorted, possibly non-uniform points.

    For a single point the weight is 1 (the integral degenerates to a sample,
    used by single-energy diagnostics).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 1:
        raise ValueError("points must be one-dimensional")
    n = points.size
    if n == 0:
        raise ValueError("empty grid")
    if n == 1:
        return np.ones(1)
    if np.any(np.diff(points) <= 0):
        raise ValueError("points must be strictly increasing")
    w = np.zeros(n)
    d = np.diff(points)
    w[0] = d[0] / 2.0
    w[-1] = d[-1] / 2.0
    w[1:-1] = (d[:-1] + d[1:]) / 2.0
    return w


@dataclass(frozen=True)
class EnergyGrid:
    """A set of energy nodes with quadrature weights.

    Attributes
    ----------
    energies : ndarray
        Strictly increasing energy nodes (eV).
    weights : ndarray
        Quadrature weights (eV); ``integral f ~= sum(weights * f(energies))``.
    """

    energies: np.ndarray
    weights: np.ndarray

    def __post_init__(self):
        e = np.asarray(self.energies, dtype=float)
        w = np.asarray(self.weights, dtype=float)
        if e.shape != w.shape or e.ndim != 1:
            raise ValueError("energies and weights must be 1-D of equal size")
        object.__setattr__(self, "energies", e)
        object.__setattr__(self, "weights", w)

    def __len__(self) -> int:
        return self.energies.size

    def integrate(self, values) -> complex | float:
        """Quadrature of sampled values against this grid's weights."""
        values = np.asarray(values)
        if values.shape[0] != len(self):
            raise ValueError(
                f"values has leading dim {values.shape[0]}, grid has {len(self)}"
            )
        return np.tensordot(self.weights, values, axes=(0, 0))

    def restrict(self, emin: float, emax: float) -> "EnergyGrid":
        """Sub-grid of nodes inside [emin, emax], weights recomputed."""
        mask = (self.energies >= emin) & (self.energies <= emax)
        pts = self.energies[mask]
        if pts.size == 0:
            raise ValueError("restriction produced an empty grid")
        return EnergyGrid(pts, trapezoid_weights(pts))


def uniform_grid(emin: float, emax: float, n_points: int) -> EnergyGrid:
    """Uniform trapezoidal grid on [emin, emax]."""
    if n_points < 1:
        raise ValueError("need at least one point")
    if n_points == 1:
        return EnergyGrid(np.array([(emin + emax) / 2.0]), np.array([emax - emin]))
    if emax <= emin:
        raise ValueError(f"emax ({emax}) must exceed emin ({emin})")
    pts = np.linspace(emin, emax, n_points)
    return EnergyGrid(pts, trapezoid_weights(pts))


def fermi_window_grid(
    chemical_potentials: Sequence[float],
    kT: float,
    n_points: int = 101,
    n_kT: float = 10.0,
    band_bottom: float | None = None,
) -> EnergyGrid:
    """Uniform grid covering the thermal window of all contacts.

    The window spans ``[min(mu) - n_kT*kT, max(mu) + n_kT*kT]``, optionally
    clipped from below at ``band_bottom`` (no propagating states below the
    source-side band edge contribute to ballistic current).
    """
    mus = list(chemical_potentials)
    if not mus:
        raise ValueError("need at least one chemical potential")
    if kT <= 0:
        raise ValueError("kT must be > 0")
    lo = min(mus) - n_kT * kT
    hi = max(mus) + n_kT * kT
    if band_bottom is not None:
        lo = max(lo, band_bottom)
    if hi <= lo:
        hi = lo + kT  # degenerate window: keep a sliver so quadrature is sane
    return uniform_grid(lo, hi, n_points)


@dataclass
class AdaptiveEnergyGrid:
    """Bisection-refined energy grid driven by an interpolation error estimate.

    The grid starts from ``n_initial`` uniform nodes; each refinement pass
    evaluates the integrand midpoint of every interval and keeps bisecting
    intervals whose midpoint deviates from the linear interpolant by more
    than ``tol`` (absolute, in the integrand's units).  This is the standard
    way quantum-transport codes catch narrow resonances without paying for a
    globally fine grid.

    Use :meth:`refine` with the integrand callable; the callable is invoked
    only on *new* energies, and all evaluations are cached in
    :attr:`samples`.
    """

    emin: float
    emax: float
    n_initial: int = 16
    tol: float = 1e-3
    max_points: int = 4096
    samples: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.emax <= self.emin:
            raise ValueError("emax must exceed emin")
        if self.n_initial < 3:
            raise ValueError("need at least 3 initial points")

    def refine(self, integrand: Callable[[float], float], max_passes: int = 12) -> EnergyGrid:
        """Refine until the error estimate falls below ``tol`` everywhere.

        Returns the final :class:`EnergyGrid`; sampled values are available
        via :meth:`sampled_values`.
        """
        energies = set(np.linspace(self.emin, self.emax, self.n_initial))
        for e in energies:
            if e not in self.samples:
                self.samples[e] = float(integrand(e))
        pts = sorted(energies)
        active = list(zip(pts[:-1], pts[1:]))
        for _ in range(max_passes):
            if not active or len(energies) >= self.max_points:
                break
            next_active: list[tuple[float, float]] = []
            for a, b in active:
                mid = 0.5 * (a + b)
                if mid not in self.samples:
                    self.samples[mid] = float(integrand(mid))
                interp = 0.5 * (self.samples[a] + self.samples[b])
                if abs(self.samples[mid] - interp) > self.tol:
                    energies.add(mid)
                    next_active.append((a, mid))
                    next_active.append((mid, b))
                    if len(energies) >= self.max_points:
                        break
            active = next_active
        pts_arr = np.array(sorted(energies))
        return EnergyGrid(pts_arr, trapezoid_weights(pts_arr))

    def sampled_values(self, grid: EnergyGrid) -> np.ndarray:
        """Cached integrand values at the nodes of ``grid``."""
        return np.array([self.samples[e] for e in grid.energies])


@dataclass(frozen=True)
class MomentumGrid:
    """Transverse-momentum sample points with weights.

    For a device periodic in one transverse direction with period ``L``
    (ultra-thin-body films), the Brillouin zone ``[-pi/L, pi/L)`` is sampled
    on ``n_points`` nodes.  Time-reversal symmetry (T(k) = T(-k) in the
    ballistic coherent case) lets us fold onto ``[0, pi/L]`` with doubled
    weights, which :func:`MomentumGrid.irreducible` exploits — this is the
    "momentum parallelism" level of OMEN.

    For a nanowire (no transverse periodicity) use :meth:`gamma_only`.
    """

    k_points: np.ndarray
    weights: np.ndarray

    def __post_init__(self):
        k = np.atleast_1d(np.asarray(self.k_points, dtype=float))
        w = np.atleast_1d(np.asarray(self.weights, dtype=float))
        if k.shape != w.shape:
            raise ValueError("k_points and weights must have equal shape")
        if not np.isclose(w.sum(), 1.0):
            raise ValueError("momentum weights must sum to 1 (BZ average)")
        object.__setattr__(self, "k_points", k)
        object.__setattr__(self, "weights", w)

    def __len__(self) -> int:
        return self.k_points.size

    @staticmethod
    def gamma_only() -> "MomentumGrid":
        """Single Gamma point — nanowires and other non-periodic sections."""
        return MomentumGrid(np.array([0.0]), np.array([1.0]))

    @staticmethod
    def uniform(period_nm: float, n_points: int) -> "MomentumGrid":
        """Uniform BZ sampling (Monkhorst-Pack, Gamma-centred) of [-pi/L, pi/L)."""
        if n_points < 1:
            raise ValueError("need at least one k point")
        if period_nm <= 0:
            raise ValueError("period must be positive")
        kmax = np.pi / period_nm
        ks = -kmax + 2.0 * kmax * (np.arange(n_points) + 0.5) / n_points
        w = np.full(n_points, 1.0 / n_points)
        return MomentumGrid(ks, w)

    @staticmethod
    def irreducible(period_nm: float, n_points: int) -> "MomentumGrid":
        """Half-BZ sampling exploiting T(k)=T(-k); weights doubled off Gamma."""
        full = MomentumGrid.uniform(period_nm, n_points)
        ks, ws = [], []
        seen: dict[float, int] = {}
        for k, w in zip(full.k_points, full.weights):
            key = round(abs(k), 12)
            if key in seen:
                ws[seen[key]] += w
            else:
                seen[key] = len(ks)
                ks.append(abs(k))
                ws.append(w)
        order = np.argsort(ks)
        return MomentumGrid(np.array(ks)[order], np.array(ws)[order])
