"""Physical constants in the unit system used throughout :mod:`repro`.

Unit conventions
----------------
* Energy    : electron-volt (eV)
* Length    : nanometre (nm)
* Time      : second (s)
* Charge    : Coulomb (C)
* Current   : Ampere (A)
* Potential : Volt (V)

With these units, ``HBAR_EV_S`` carries eV*s and the frequently used
combination ``HBAR2_OVER_2M0`` (= hbar^2 / 2 m0) carries eV*nm^2, so that a
parabolic dispersion reads ``E = HBAR2_OVER_2M0 * k**2 / m_rel`` with ``k``
in 1/nm and ``m_rel`` the effective mass relative to the free-electron mass.

All values are CODATA-2018 rounded to the precision relevant for empirical
tight-binding device simulation (band energies are only known to ~meV).
"""

from __future__ import annotations

import math

# --- fundamental constants -------------------------------------------------

#: Elementary charge (C).
Q_E: float = 1.602176634e-19

#: Boltzmann constant (eV / K).
KB_EV: float = 8.617333262e-5

#: Reduced Planck constant (eV * s).
HBAR_EV_S: float = 6.582119569e-16

#: Planck constant (eV * s).
H_EV_S: float = 4.135667696e-15

#: Free-electron mass expressed through hbar^2/(2 m0) in eV * nm^2.
#: E[eV] = HBAR2_OVER_2M0 * (k[1/nm])^2 / m_rel.
HBAR2_OVER_2M0: float = 0.0380998212

#: Vacuum permittivity (C / (V * nm)); eps0 = 8.8541878128e-12 F/m.
EPS0_C_V_NM: float = 8.8541878128e-21

#: Conductance quantum G0 = 2 e^2 / h (Siemens), including spin degeneracy.
G0_SIEMENS: float = 7.748091729e-5

#: Current prefactor q/h in A/eV: I = (q/h) * integral T(E) dE  (per spin).
Q_OVER_H_A_PER_EV: float = Q_E / H_EV_S

#: Room temperature (K) used as the default throughout.
T_ROOM: float = 300.0

#: kT at room temperature (eV).
KT_ROOM: float = KB_EV * T_ROOM


def thermal_energy(temperature_k: float) -> float:
    """Return ``kT`` in eV for a temperature in Kelvin.

    Raises
    ------
    ValueError
        If the temperature is negative.
    """
    if temperature_k < 0.0:
        raise ValueError(f"temperature must be >= 0 K, got {temperature_k}")
    return KB_EV * temperature_k


def effective_mass_hopping(m_rel: float, spacing_nm: float) -> float:
    """Nearest-neighbour hopping ``t = hbar^2 / (2 m a^2)`` in eV.

    This is the hopping energy of the discretized single-band effective-mass
    Hamiltonian on a grid with spacing ``spacing_nm`` — the "discretized
    Schroedinger equation" model of Boykin & Klimeck (Eur. J. Phys. 2004),
    used as the cheap single-band material in the device simulator.
    """
    if m_rel <= 0.0:
        raise ValueError(f"relative effective mass must be > 0, got {m_rel}")
    if spacing_nm <= 0.0:
        raise ValueError(f"grid spacing must be > 0, got {spacing_nm}")
    return HBAR2_OVER_2M0 / (m_rel * spacing_nm**2)


def de_broglie_wavelength(energy_ev: float, m_rel: float = 1.0) -> float:
    """Electron de Broglie wavelength (nm) at kinetic energy ``energy_ev``."""
    if energy_ev <= 0.0:
        raise ValueError(f"kinetic energy must be > 0, got {energy_ev}")
    k = math.sqrt(energy_ev * m_rel / HBAR2_OVER_2M0)
    return 2.0 * math.pi / k
