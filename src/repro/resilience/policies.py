"""Recovery policies: retry ladders, degradation ladders, SCF rescue.

Three families of recovery, ordered from cheapest to most intrusive:

* :class:`RetryPolicy` — re-attempt a failed task with capped exponential
  backoff; transient faults (machine checks, injected flips) vanish on the
  second attempt, persistent ones exhaust the budget and are surfaced (or
  quarantined by the caller).
* :func:`robust_surface_gf` — the surface-GF degradation ladder: when
  Sancho-Rubio stalls at a band edge, escalate ``eta`` by decades, and if
  decimation never contracts fall back to the complex-band
  :func:`repro.negf.eigen_surface_gf` construction.
* :class:`SCFRescue` — the bias-point rescue ladder: cold restart (drop
  the possibly-poisoned warm start), halve the mixing damping, switch
  Anderson -> linear mixing, shrink the bias-continuation step.  Each rung
  trades speed for robustness, mirroring what an operator does by hand
  when a production bias point refuses to converge.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import (
    ConvergenceError,
    NumericalBreakdownError,
    SurfaceGFConvergenceError,
    TaskFailure,
)

__all__ = ["RetryPolicy", "robust_surface_gf", "SCFRescue"]


@dataclass
class RetryPolicy:
    """Capped-exponential-backoff retry of a fallible callable.

    Parameters
    ----------
    max_retries : int
        Extra attempts after the first (0 = fail fast).
    backoff_s : float
        Base delay before the first retry; 0 disables sleeping entirely
        (the in-process default — backoff only matters against shared
        external resources).
    backoff_factor : float
        Multiplier per retry.
    max_backoff_s : float
        Delay cap.
    retry_on : tuple of exception types
        What is considered transient.
    sleep : callable
        Injectable clock for tests.
    """

    max_retries: int = 2
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    retry_on: tuple = (TaskFailure, NumericalBreakdownError, ConvergenceError)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return min(
            self.backoff_s * self.backoff_factor**attempt, self.max_backoff_s
        )

    def run(self, attempt_fn: Callable[[int], object], report=None):
        """Call ``attempt_fn(attempt)`` until success or budget exhausted.

        Faults matching ``retry_on`` are counted into ``report`` (injected
        vs organic via the exception's ``injected`` flag); the last one is
        re-raised when the budget runs out.
        """
        last: BaseException | None = None
        for attempt in range(self.max_retries + 1):
            try:
                return attempt_fn(attempt)
            except self.retry_on as exc:
                last = exc
                if report is not None:
                    report.record_fault(
                        injected=bool(getattr(exc, "injected", False))
                    )
                if attempt == self.max_retries:
                    break
                if report is not None:
                    report.retries += 1
                pause = self.delay(attempt)
                if pause > 0:
                    self.sleep(pause)
        assert last is not None
        raise last


# ----------------------------------------------------------------------
def robust_surface_gf(
    energy: float,
    h00,
    h01,
    side: str = "left",
    eta: float = 1e-6,
    tol: float = 1e-14,
    max_iter: int = 200,
    eta_ladder: tuple = (10.0, 100.0),
    report=None,
):
    """Surface GF with the eta-escalation / eigen-fallback ladder.

    Tries Sancho-Rubio at the nominal ``eta``; on
    :class:`SurfaceGFConvergenceError` escalates ``eta`` by each factor of
    ``eta_ladder`` (a slightly-degraded but finite answer beats an aborted
    sweep), and as a last resort switches to the complex-band
    :func:`repro.negf.eigen_surface_gf` construction, which has no fixed
    point to stall.

    Returns
    -------
    (g, path) : (ndarray, str)
        The surface GF and the recovery path taken (``"sancho"``,
        ``"sancho-eta*10"``, ..., ``"eigen"``).
    """
    from ..negf.surface_gf import eigen_surface_gf, sancho_rubio
    from ..observability.metrics import get_metrics

    metrics = get_metrics()
    try:
        g, _ = sancho_rubio(
            energy, h00, h01, side=side, eta=eta, tol=tol, max_iter=max_iter
        )
        return g, "sancho"
    except SurfaceGFConvergenceError as exc:
        if report is not None:
            report.record_fault(injected=bool(getattr(exc, "injected", False)))
    for factor in eta_ladder:
        if metrics.enabled:
            metrics.inc(
                "surface_gf.eta_escalations", 1.0, factor=f"{factor:g}"
            )
        try:
            g, _ = sancho_rubio(
                energy,
                h00,
                h01,
                side=side,
                eta=eta * factor,
                tol=tol,
                max_iter=max_iter,
            )
            path = f"sancho-eta*{factor:g}"
            if report is not None:
                report.record_fallback(f"surface_gf:{path}")
            return g, path
        except SurfaceGFConvergenceError:
            continue
    if metrics.enabled:
        metrics.inc("surface_gf.eigen_fallbacks", 1.0)
    try:
        g = eigen_surface_gf(energy, h00, h01, side=side, eta=max(eta, 1e-9))
    except (np.linalg.LinAlgError, ValueError) as exc:
        # poisoned lead blocks break the generalized eigensolver too;
        # surface the whole exhausted ladder as one typed error so the
        # transport degradation ladder can quarantine the point
        raise SurfaceGFConvergenceError(
            f"surface-GF ladder exhausted (eigen fallback failed: {exc}) "
            f"at E = {energy}, eta = {eta}",
            energy=energy,
            eta=eta,
        ) from exc
    if report is not None:
        report.record_fallback("surface_gf:eigen")
    return g, "eigen"


# ----------------------------------------------------------------------
@contextlib.contextmanager
def _overridden(obj, overrides: dict):
    """Temporarily set attributes on ``obj`` (restored on exit)."""
    saved = {name: getattr(obj, name) for name in overrides}
    try:
        for name, value in overrides.items():
            setattr(obj, name, value)
        yield obj
    finally:
        for name, value in saved.items():
            setattr(obj, name, value)


class SCFRescue:
    """Rescue ladder for a non-converged SCF bias point.

    The rungs, in order (first convergence wins):

    1. ``cold-restart`` — drop the warm start (only when one was used);
    2. ``beta-halved`` — halve the mixing damping;
    3. ``linear-mixing`` — Anderson -> plain linear mixing at halved beta
       (Anderson's least-squares history can amplify a noisy density);
    4. ``continuation-halved`` — halve the drain-bias continuation step
       (finer ramp, each stage closer to the previous fixed point).

    Parameters
    ----------
    min_continuation_step : float
        Floor for rung 4 (V).
    """

    def __init__(self, min_continuation_step: float = 0.03):
        self.min_continuation_step = min_continuation_step

    def stages(self, solver, used_warm_start: bool, continuation_step: float):
        """The (name, attr-overrides, continuation_step) rungs to try."""
        half_beta = 0.5 * solver.beta
        out = []
        if used_warm_start:
            out.append(("cold-restart", {}, continuation_step))
        out.append(("beta-halved", {"beta": half_beta}, continuation_step))
        if solver.mixing != "linear":
            out.append(
                (
                    "linear-mixing",
                    {"beta": half_beta, "mixing": "linear"},
                    continuation_step,
                )
            )
        shrunk = max(0.5 * continuation_step, self.min_continuation_step)
        if continuation_step > 0 and shrunk < continuation_step:
            out.append(
                (
                    "continuation-halved",
                    {"beta": half_beta, "mixing": "linear"},
                    shrunk,
                )
            )
        return out

    def run(
        self,
        solver,
        v_gate: float,
        v_drain: float,
        used_warm_start: bool = False,
        continuation_step: float = 0.12,
        report=None,
    ):
        """Climb the ladder at one bias point; returns (result, path).

        ``result`` is the first converged :class:`repro.core.SCFResult`,
        or the best (lowest final residual) attempt if every rung fails;
        ``path`` is the tuple of rung names tried.
        """
        path: list[str] = []
        best = None
        for name, overrides, step in self.stages(
            solver, used_warm_start, continuation_step
        ):
            path.append(name)
            if report is not None:
                report.record_fallback(f"scf:{name}")
            with _overridden(solver, overrides):
                result = solver.run(
                    v_gate, v_drain, phi0=None, continuation_step=step
                )
            if result.converged:
                return result, tuple(path)
            if best is None or (
                result.residuals
                and best.residuals
                and result.residuals[-1] < best.residuals[-1]
            ):
                best = result
        if best is None:
            raise NumericalBreakdownError(
                f"SCF rescue ladder has no rungs at V_G={v_gate}, V_D={v_drain}"
            )
        return best, tuple(path)
