"""Resilience layer: fault injection, recovery ladders, checkpoint/restart.

Sustained petascale throughput — the paper's headline — is as much a
fault-tolerance result as a flops result: a full I-V sweep on ~221k cores
only finishes if the run survives non-converging surface-GF/SCF
iterations, poisoned tasks, stragglers and dead ranks.  This package is
the reproduction's equivalent machinery:

* typed errors (:mod:`repro.errors`, re-exported here);
* a deterministic, seedable :class:`FaultInjector` wired through the
  scheduler, the distributed driver, the comm layer and the I-V engine;
* recovery policies — :class:`RetryPolicy` with capped backoff and
  quarantine, the surface-GF degradation ladder
  (:func:`robust_surface_gf`), and the :class:`SCFRescue` ladder;
* atomic :class:`SweepCheckpoint` / :class:`RampCheckpoint` for
  kill-and-resume sweeps;
* a :class:`ResilienceReport` ledger attached to every resilient run;
* numerical-health sentinels (:mod:`repro.resilience.health`) and the
  graceful-degradation ladder with its :class:`DegradationReport` and
  :class:`DegradationBudget` (:mod:`repro.resilience.degrade`);
* a chaos-campaign harness (:mod:`repro.resilience.chaos`, imported
  lazily by ``repro chaos`` to keep this package free of core imports).
"""

from ..errors import (
    ConvergenceError,
    DegradationBudgetError,
    NumericalBreakdownError,
    RankFailure,
    ReproError,
    SCFConvergenceError,
    SurfaceGFConvergenceError,
    TaskFailure,
)
from .checkpoint import RampCheckpoint, SweepCheckpoint, atomic_write_bytes
from .degrade import (
    DegradationBudget,
    DegradationReport,
    corrupt_hamiltonian,
    dense_oracle_solve,
)
from .faults import FaultInjector, InjectedFault, nan_like, non_finite
from .health import (
    HealthEvent,
    HealthSentinel,
    condition_estimate,
    get_sentinel,
    set_sentinel,
    use_sentinel,
)
from .policies import RetryPolicy, SCFRescue, robust_surface_gf
from .report import ResilienceReport

__all__ = [
    "ReproError",
    "ConvergenceError",
    "SurfaceGFConvergenceError",
    "SCFConvergenceError",
    "NumericalBreakdownError",
    "DegradationBudgetError",
    "TaskFailure",
    "RankFailure",
    "FaultInjector",
    "InjectedFault",
    "non_finite",
    "nan_like",
    "RetryPolicy",
    "SCFRescue",
    "robust_surface_gf",
    "ResilienceReport",
    "SweepCheckpoint",
    "RampCheckpoint",
    "atomic_write_bytes",
    "HealthEvent",
    "HealthSentinel",
    "condition_estimate",
    "get_sentinel",
    "set_sentinel",
    "use_sentinel",
    "DegradationReport",
    "DegradationBudget",
    "corrupt_hamiltonian",
    "dense_oracle_solve",
]
