"""Run-level accounting of faults, retries and recovery paths.

A resilient sweep is only trustworthy if it *reports* what it survived:
how many faults occurred (and whether they were injected or organic), how
many retries and which degradation ladders were taken, and which points
ended up quarantined or unconverged.  :class:`ResilienceReport` is that
ledger; it is attached to :class:`repro.core.IVCurve` and printed by the
CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResilienceReport"]


@dataclass
class ResilienceReport:
    """Ledger of everything the resilience layer did during a run.

    Attributes
    ----------
    retries : int
        Total retry attempts (beyond first attempts) across all tasks.
    injected_faults, organic_faults : int
        Faults seen, split by origin (injector vs real failure).
    fallbacks : dict
        Recovery-path counters, e.g. ``{"surface_gf:eigen": 3,
        "scf:beta-halved": 1, "rank:requeue": 1}``.
    rank_failures : int
        Dead ranks observed.
    requeued_tasks : int
        Tasks reclaimed from dead ranks by survivors.
    quarantined : list
        Keys of tasks/points abandoned after exhausting every policy.
    degraded_points : list
        Bias keys that converged only through a fallback ladder.
    unconverged_points : list
        Bias keys recorded without convergence.
    resumed_points : int
        Points loaded from a checkpoint instead of recomputed.
    """

    retries: int = 0
    injected_faults: int = 0
    organic_faults: int = 0
    fallbacks: dict = field(default_factory=dict)
    rank_failures: int = 0
    requeued_tasks: int = 0
    quarantined: list = field(default_factory=list)
    degraded_points: list = field(default_factory=list)
    unconverged_points: list = field(default_factory=list)
    resumed_points: int = 0

    # ------------------------------------------------------------------
    def record_fault(self, injected: bool = False) -> None:
        """Count one fault by origin."""
        if injected:
            self.injected_faults += 1
        else:
            self.organic_faults += 1

    def record_fallback(self, name: str) -> None:
        """Count one traversal of a named recovery path."""
        self.fallbacks[name] = self.fallbacks.get(name, 0) + 1

    @property
    def total_faults(self) -> int:
        """Injected plus organic faults."""
        return self.injected_faults + self.organic_faults

    def merge(self, other: "ResilienceReport") -> None:
        """Fold another report (e.g. from a nested solve) into this one."""
        self.retries += other.retries
        self.injected_faults += other.injected_faults
        self.organic_faults += other.organic_faults
        self.rank_failures += other.rank_failures
        self.requeued_tasks += other.requeued_tasks
        self.resumed_points += other.resumed_points
        for name, count in other.fallbacks.items():
            self.fallbacks[name] = self.fallbacks.get(name, 0) + count
        self.quarantined.extend(other.quarantined)
        self.degraded_points.extend(other.degraded_points)
        self.unconverged_points.extend(other.unconverged_points)

    def to_dict(self) -> dict:
        """JSON-compatible view (used by the CLI result files)."""
        return {
            "retries": self.retries,
            "injected_faults": self.injected_faults,
            "organic_faults": self.organic_faults,
            "fallbacks": dict(self.fallbacks),
            "rank_failures": self.rank_failures,
            "requeued_tasks": self.requeued_tasks,
            "quarantined": [repr(k) for k in self.quarantined],
            "degraded_points": [repr(k) for k in self.degraded_points],
            "unconverged_points": [repr(k) for k in self.unconverged_points],
            "resumed_points": self.resumed_points,
        }

    def summary(self) -> str:
        """One-paragraph human-readable digest for the CLI."""
        lines = [
            "resilience: "
            f"{self.total_faults} fault(s) "
            f"({self.injected_faults} injected, {self.organic_faults} organic), "
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}, "
            f"{self.rank_failures} rank failure(s), "
            f"{self.requeued_tasks} task(s) requeued, "
            f"{self.resumed_points} point(s) resumed from checkpoint"
        ]
        if self.fallbacks:
            taken = ", ".join(
                f"{name} x{count}" for name, count in sorted(self.fallbacks.items())
            )
            lines.append(f"fallbacks: {taken}")
        if self.quarantined:
            lines.append(f"quarantined: {self.quarantined}")
        if self.unconverged_points:
            lines.append(f"unconverged: {self.unconverged_points}")
        return "\n".join(lines)
