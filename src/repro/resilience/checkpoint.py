"""Atomic checkpoint/restart for I-V sweeps and the SCF bias ramp.

A production I-V campaign on a petascale machine runs for hours; losing
every converged bias point to one crash is not acceptable.  Checkpoints
here are written *atomically* (serialise to ``<path>.tmp``, then
``os.replace``) so a kill at any instant leaves either the previous or the
new checkpoint on disk, never a torn file.

Two granularities:

* :class:`SweepCheckpoint` — converged :class:`repro.core.IVPoint` records
  plus the last converged potential ``phi`` (the warm start for the next
  point).  Resuming recomputes only the missing bias points and, because
  ``phi`` is stored bit-exactly in the npz, reproduces the uninterrupted
  sweep identically.
* :class:`RampCheckpoint` — intermediate stages of the drain-bias
  continuation ramp inside one SCF solve (the most expensive single points
  of an output sweep).

Points are stored as plain dicts, keeping this module import-light (no
dependency on :mod:`repro.core`, which imports us).
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["atomic_write_bytes", "SweepCheckpoint", "RampCheckpoint"]


def atomic_write_bytes(path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (tmp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(FileNotFoundError):
            os.unlink(tmp)
        raise


def _bias_key(v_gate: float, v_drain: float) -> tuple:
    """Float-robust identity of a bias point (nV resolution)."""
    return (round(float(v_gate), 9), round(float(v_drain), 9))


class SweepCheckpoint:
    """Atomic npz checkpoint of a (partially) completed I-V sweep.

    Parameters
    ----------
    path : str or Path
        Checkpoint file (conventionally ``*.npz``).
    """

    def __init__(self, path):
        self.path = Path(path)

    def exists(self) -> bool:
        """Whether a checkpoint file is on disk."""
        return self.path.exists()

    # ------------------------------------------------------------------
    def save(self, points: list[dict], phi, meta: dict | None = None) -> None:
        """Atomically persist completed points + last potential.

        Parameters
        ----------
        points : list of dict
            Completed points as plain dicts (``v_gate``, ``v_drain``,
            ``current_a``, ``converged``, ``n_iterations``, ``recovery``).
        phi : ndarray or None
            Last converged potential (bit-exact warm start on resume).
        meta : dict or None
            Sweep identity (bias axes, method, ...) validated on resume.
        """
        arrays = {
            "points_json": np.frombuffer(
                json.dumps(points).encode(), dtype=np.uint8
            ),
            "meta_json": np.frombuffer(
                json.dumps(meta or {}).encode(), dtype=np.uint8
            ),
        }
        if phi is not None:
            arrays["phi"] = np.asarray(phi, dtype=float)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        atomic_write_bytes(self.path, buffer.getvalue())

    def load(self) -> dict | None:
        """Read the checkpoint; None when absent.

        Returns ``{"points": [dict...], "phi": ndarray | None,
        "meta": dict}``.
        """
        if not self.path.exists():
            return None
        with np.load(self.path) as data:
            points = json.loads(bytes(data["points_json"]).decode())
            meta = json.loads(bytes(data["meta_json"]).decode())
            phi = np.array(data["phi"]) if "phi" in data else None
        return {"points": points, "phi": phi, "meta": meta}

    def completed_keys(self, state: dict | None = None) -> dict:
        """Map of bias key -> point dict for every checkpointed point."""
        state = state if state is not None else self.load()
        if state is None:
            return {}
        return {
            _bias_key(p["v_gate"], p["v_drain"]): p for p in state["points"]
        }

    def clear(self) -> None:
        """Delete the checkpoint file (start of a fresh, non-resumed run)."""
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.path)


class RampCheckpoint:
    """Atomic checkpoint of the drain-bias continuation ramp of one solve.

    The SCF driver calls :meth:`save` after each converged ramp stage and
    :meth:`load` at entry; a restarted solve resumes from the last stage
    instead of re-ramping from equilibrium.
    """

    def __init__(self, path):
        self.path = Path(path)

    def save(self, v_drain_reached: float, phi) -> None:
        """Persist the potential at an intermediate ramp bias."""
        buffer = io.BytesIO()
        np.savez(
            buffer,
            v_drain_reached=np.array(float(v_drain_reached)),
            phi=np.asarray(phi, dtype=float),
        )
        atomic_write_bytes(self.path, buffer.getvalue())

    def load(self) -> tuple[float, np.ndarray] | None:
        """(v_drain_reached, phi) of the stored stage, or None."""
        if not self.path.exists():
            return None
        with np.load(self.path) as data:
            return float(data["v_drain_reached"]), np.array(data["phi"])

    def clear(self) -> None:
        """Remove the ramp checkpoint (called once the point converges)."""
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.path)
