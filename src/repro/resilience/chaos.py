"""Chaos-campaign harness: drill every recovery path on a mini device.

A resilience subsystem that is only exercised by real production failures
is dead code until the worst possible moment.  This module runs a scripted
campaign of fault drills against a small reference FET — one stage per
failure family, covering all four parallel levels of the decomposition
(bias, momentum, energy, spatial) plus the numerical-fault sites added by
the health-sentinel work (NaN injection, conditioning perturbation, hung
workers) — and asserts two properties per stage:

1. the sweep/solve **completes** (the degradation ladder healed or
   quarantined every injected fault), and
2. every injected event is **accounted** in the
   :class:`~repro.resilience.degrade.DegradationReport` /
   :class:`~repro.resilience.report.ResilienceReport` (nothing silently
   swallowed).

Stage zero is the control experiment: with zero injected faults the
containment machinery must be a pure observer — the solve output is
bit-identical with the sentinel off and in ``contain`` mode.

Entry points: :func:`run_campaign` (library), ``repro chaos`` (CLI) and
``scripts/run_chaos.py`` (CI job).  Core imports stay inside functions so
importing :mod:`repro.resilience` never drags in the full device stack.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import NumericalBreakdownError, TaskFailure
from .faults import FaultInjector
from .health import HealthSentinel, use_sentinel
from .policies import RetryPolicy
from .report import ResilienceReport

__all__ = ["ChaosStageResult", "ChaosCampaignResult", "run_campaign"]


@dataclass
class ChaosStageResult:
    """Outcome of one chaos stage."""

    name: str
    ok: bool
    injected: int = 0
    accounted: int = 0
    completed: bool = False
    duration_s: float = 0.0
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": bool(self.ok),
            "injected": int(self.injected),
            "accounted": int(self.accounted),
            "completed": bool(self.completed),
            "duration_s": round(float(self.duration_s), 3),
            "detail": self.detail,
        }


@dataclass
class ChaosCampaignResult:
    """All stage outcomes of one campaign run."""

    backend: str
    stages: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.stages) and all(s.ok for s in self.stages)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "passed": self.passed,
            "stages": [s.to_dict() for s in self.stages],
        }

    def summary(self) -> str:
        lines = [
            f"chaos campaign [{self.backend}]: "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"({sum(s.ok for s in self.stages)}/{len(self.stages)} stages)"
        ]
        for s in self.stages:
            mark = "ok  " if s.ok else "FAIL"
            lines.append(
                f"  [{mark}] {s.name:<22s} injected={s.injected} "
                f"accounted={s.accounted} completed={s.completed} "
                f"({s.duration_s:.2f}s){' - ' + s.detail if s.detail else ''}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _mini_built():
    """The reference mini-FET every stage drills against."""
    from ..core import DeviceSpec, build_device

    spec = DeviceSpec(
        name="chaos-mini",
        n_x=10,
        n_y=2,
        n_z=2,
        spacing_nm=0.25,
        source_cells=3,
        drain_cells=3,
        gate_cells=(4, 6),
        donor_density_nm3=0.05,
        material_params={"m_rel": 0.3},
    )
    return build_device(spec)


def _calc(built, backend="serial", workers=2, injector=None, method="wf",
          **kwargs):
    from ..core import TransportCalculation

    return TransportCalculation(
        built, method=method, n_energy=13, backend=backend, workers=workers,
        injector=injector, **kwargs,
    )


def _stage(name):
    """Decorator registering a stage runner under ``name``."""

    def wrap(fn):
        fn.stage_name = name
        return fn

    return wrap


# ----------------------------------------------------------------------
@_stage("clean-bit-identity")
def _stage_clean(built, backend, workers):
    """Zero faults: contain-mode output must be bit-identical to off."""
    potential = np.zeros(built.n_atoms)
    with use_sentinel(HealthSentinel(mode="off")):
        ref = _calc(built, backend, workers).solve_bias(potential, 0.1)
    with use_sentinel(HealthSentinel(mode="contain")):
        res = _calc(built, backend, workers).solve_bias(potential, 0.1)
    identical = (
        np.array_equal(ref.transmission, res.transmission)
        and np.array_equal(ref.density_per_atom, res.density_per_atom)
        and ref.current_a == res.current_a
    )
    clean = res.degradation is not None and res.degradation.total_events == 0
    return ChaosStageResult(
        name="clean-bit-identity",
        ok=identical and clean,
        injected=0,
        accounted=0,
        completed=True,
        detail="" if identical else "outputs differ between off and contain",
    )


@_stage("bias-level-faults")
def _stage_bias(built, backend, workers):
    """Level-1 (bias) faults: injected raises retried by the IV engine."""
    from ..core import IVSweep, SelfConsistentSolver

    injector = FaultInjector(
        seed=7,
        rate=0.5,
        actions=("raise",),
        sites=("bias",),
        # guarantee at least one level-1 fault regardless of the seed's
        # rate draws (bias keys are (v_gate, v_drain) rounded to 1e-9)
        plan={("bias", (0.2, 0.1)): "raise"},
    )
    scf = SelfConsistentSolver(
        built, transport=_calc(built, backend, workers),
        max_iterations=2, tol_v=0.5,
    )
    sweep = IVSweep(
        scf, rescue=None, retry=RetryPolicy(max_retries=2), injector=injector
    )
    curve = sweep.transfer_curve([0.0, 0.2, 0.4], v_drain=0.1)
    completed = len(curve.points) == 3 and all(
        np.isfinite(p.current_a) for p in curve.points
    )
    accounted = curve.report.injected_faults
    return ChaosStageResult(
        name="bias-level-faults",
        ok=completed and accounted >= injector.n_injected > 0,
        injected=injector.n_injected,
        accounted=accounted,
        completed=completed,
    )


@_stage("energy-numerical")
def _stage_energy(built, backend, workers):
    """NaN / ill-conditioning faults healed by the degradation ladder."""
    injector = FaultInjector(
        seed=11,
        rate=0.15,
        actions=("nan", "raise"),
        sites=("energy",),
        plan={("hblock", 0): "illcond"},
    )
    # RGF: its block-LU factorisation carries the condition sentinel that
    # must catch the injected ill-conditioning
    calc = _calc(built, backend, workers, injector=injector, method="rgf")
    res = calc.solve_bias(np.zeros(built.n_atoms), 0.1)
    completed = np.all(np.isfinite(res.transmission)) and np.isfinite(
        res.current_a
    )
    accounted = res.degradation.total_events if res.degradation else 0
    return ChaosStageResult(
        name="energy-numerical",
        ok=bool(completed) and accounted >= injector.n_injected > 0,
        injected=injector.n_injected,
        accounted=accounted,
        completed=bool(completed),
    )


@_stage("distributed-4level")
def _stage_distributed(built, backend, workers):
    """Dead ranks across the 4-level decomposition: requeue and shrink."""
    from ..core import DistributedTransport
    from ..parallel import SerialComm

    potential = np.zeros(built.n_atoms)
    tc = _calc(built, "serial", workers)
    dt = DistributedTransport(tc, max_spatial=2)
    clean = dt.solve_bias(potential, 0.1, SerialComm(), n_ranks=8)

    results = {}
    total_injected = 0
    total_accounted = 0
    for recovery in ("requeue", "shrink"):
        injector = FaultInjector(
            seed=3, rate=0.1, sites=("task",), actions=("raise",),
            plan={("rank", 0): "dead_rank"},
        )
        report = ResilienceReport()
        results[recovery] = dt.solve_bias(
            potential, 0.1, SerialComm(), n_ranks=8,
            injector=injector, retry=RetryPolicy(max_retries=2),
            report=report, rank_recovery=recovery,
        )
        total_injected += injector.n_injected
        total_accounted += report.injected_faults + report.rank_failures
    exact = np.array_equal(
        clean["density_per_atom"], results["requeue"]["density_per_atom"]
    ) and clean["current_a"] == results["requeue"]["current_a"]
    close = np.allclose(
        clean["density_per_atom"], results["shrink"]["density_per_atom"],
        rtol=1e-9, atol=0,
    ) and np.isclose(
        clean["current_a"], results["shrink"]["current_a"], rtol=1e-9
    )
    return ChaosStageResult(
        name="distributed-4level",
        ok=exact and close and total_accounted >= 2,
        injected=total_injected,
        accounted=total_accounted,
        completed=True,
        detail="" if exact else "requeue recovery not bit-identical",
    )


@_stage("comm-faults")
def _stage_comm(built, backend, workers):
    """Transient collective failures healed by retry."""
    from ..parallel import SerialComm, UnreliableComm

    injector = FaultInjector(seed=5, plan={("comm", ("allreduce", 1)): "raise"})
    comm = UnreliableComm(SerialComm(), injector)
    report = ResilienceReport()

    def attempt(attempt_number: int):
        return comm.allreduce(42.0, op="sum")

    value = RetryPolicy(max_retries=2).run(attempt, report=report)
    return ChaosStageResult(
        name="comm-faults",
        ok=value == 42.0 and report.injected_faults >= 1,
        injected=injector.n_injected,
        accounted=report.injected_faults,
        completed=value == 42.0,
    )


@_stage("worker-hang")
def _stage_worker_hang(built, backend, workers):
    """A hung backend worker recovered by deadline + speculation/restart."""
    from ..parallel.backend import ProcessBackend, ThreadBackend

    if backend == "serial":
        return ChaosStageResult(
            name="worker-hang",
            ok=True,
            completed=True,
            detail="skipped (serial backend has no workers)",
        )
    injector = FaultInjector(
        seed=1, plan={("worker", 0): "hang"}, hang_seconds=3.0
    )
    if backend == "thread":
        elastic = ThreadBackend(workers=max(workers, 2), deadline_s=0.5)
    else:
        elastic = ProcessBackend(workers=max(workers, 2), deadline_s=3.0)
        # warm the pool so worker spawn latency is not counted against
        # the deadline of the faulted chunk
        elastic.map(_noop, [0, 1])
    calc = _calc(built, elastic, workers, injector=injector)
    res = calc.solve_bias(np.zeros(built.n_atoms), 0.1)
    completed = np.all(np.isfinite(res.transmission)) and np.isfinite(
        res.current_a
    )
    d = res.degradation
    recovered = d is not None and d.stragglers >= 1 and (
        d.speculative_wins >= 1 or d.pool_restarts >= 1
    )
    return ChaosStageResult(
        name="worker-hang",
        ok=bool(completed) and recovered,
        injected=injector.n_injected,
        accounted=(d.stragglers + d.speculative_wins + d.pool_restarts)
        if d else 0,
        completed=bool(completed),
    )


@_stage("zero-copy-plan-crash")
def _stage_zero_copy(built, backend, workers):
    """A worker dying while attached to a shared plan segment.

    Process backend: a child hangs mid-chunk holding a mapping of the
    published plan; the deadline must restart the pool, the parent must
    salvage the chunk (re-attaching the plan through the publisher fast
    path), and the solve must end with zero live segments.  The pooled
    serial/thread variants drill the lifecycle instead: the local-mode
    plan path must be a pure relabelling — bit-identical output, nothing
    left published.
    """
    from ..parallel import active_plans
    from ..parallel.backend import ProcessBackend

    potential = np.zeros(built.n_atoms)
    if backend != "process":
        ref = _calc(built, backend, workers).solve_bias(potential, 0.1)
        res = _calc(built, backend, workers, zero_copy=True).solve_bias(
            potential, 0.1
        )
        identical = (
            np.array_equal(ref.transmission, res.transmission)
            and ref.current_a == res.current_a
        )
        leaked = len(active_plans())
        return ChaosStageResult(
            name="zero-copy-plan-crash",
            ok=identical and leaked == 0,
            injected=0,
            accounted=0,
            completed=True,
            detail="" if identical and leaked == 0 else (
                f"identical={identical} leaked_plans={leaked}"
            ),
        )
    injector = FaultInjector(
        seed=1, plan={("worker", 0): "hang"}, hang_seconds=3.0
    )
    elastic = ProcessBackend(workers=max(workers, 2), deadline_s=3.0)
    # warm the pool so worker spawn latency is not counted against the
    # deadline of the faulted chunk
    elastic.map(_noop, [0, 1])
    calc = _calc(built, elastic, workers, injector=injector, zero_copy=True)
    res = calc.solve_bias(potential, 0.1)
    completed = np.all(np.isfinite(res.transmission)) and np.isfinite(
        res.current_a
    )
    d = res.degradation
    recovered = d is not None and d.stragglers >= 1 and d.pool_restarts >= 1
    leaked = len(active_plans())
    return ChaosStageResult(
        name="zero-copy-plan-crash",
        ok=bool(completed) and recovered and leaked == 0,
        injected=injector.n_injected,
        accounted=(d.stragglers + d.pool_restarts) if d else 0,
        completed=bool(completed),
        detail="" if leaked == 0 else f"{leaked} plan segment(s) leaked",
    )


@_stage("poisson-nan")
def _stage_poisson(built, backend, workers):
    """A poisoned charge model must raise typed, not return stale phi."""
    from ..poisson.nonlinear import NonlinearPoisson

    class PoisonedCharge:
        def density(self, phi):
            return np.full_like(phi, np.nan)

        def d_density_d_phi(self, phi):
            return np.zeros_like(phi)

    solver = NonlinearPoisson(
        built.poisson_grid,
        built.eps_r,
        np.zeros(built.poisson_grid.n_nodes),
    )
    sentinel = HealthSentinel(mode="contain")
    with use_sentinel(sentinel):
        try:
            solver.solve(PoisonedCharge(), max_iter=5)
            raised = False
        except NumericalBreakdownError:
            raised = True
    trips = sentinel.trips_since(0)
    accounted = sum(trips.values())
    return ChaosStageResult(
        name="poisson-nan",
        ok=raised and trips.get("poisson:nonfinite", 0) >= 1,
        injected=1,
        accounted=accounted,
        completed=raised,
        detail="" if raised else "non-finite residual did not raise",
    )


@_stage("adaptive-wave-crash")
def _stage_adaptive_wave(built, backend, workers):
    """An energy node dying mid-wave during adaptive refinement.

    A persistent NaN planted on one seed node of the adaptive quadrature
    must route through the per-point degradation ladder and end in
    quarantine: the wave engine retires the intervals touching the dead
    node, the node never reaches the final grid, and refinement
    converges on the survivors instead of pinning on the unsolvable
    point.  The solve must finish finite with the exclusion accounted in
    both the degradation report and the ``adaptive`` stats.
    """
    potential = np.zeros(built.n_atoms)
    probe = _calc(built, backend, workers, energy_mode="adaptive")
    grid = probe.energy_grid(potential, 0.1)
    n_initial = max(13 // 2, 9)  # _calc solves n_energy=13
    seed = np.linspace(grid.energies.min(), grid.energies.max(), n_initial)
    e_bad = float(seed[4])
    injector = FaultInjector(
        plan={("energy", (0, e_bad)): "nan"}, once=False
    )
    calc = _calc(
        built, backend, workers, injector=injector,
        energy_mode="adaptive", adaptive_tol=0.05,
    )
    res = calc.solve_bias(potential, 0.1)
    completed = np.all(np.isfinite(res.transmission)) and np.isfinite(
        res.current_a
    )
    stats = res.adaptive or {}
    d = res.degradation
    quarantined = d is not None and (0, e_bad) in d.quarantined_points
    excluded = stats.get("excluded", 0) >= 1
    converged = stats.get("waves", 0) >= 1 and not stats.get(
        "budget_hits", 0
    )
    accounted = d.total_events if d else 0
    return ChaosStageResult(
        name="adaptive-wave-crash",
        ok=(
            bool(completed) and quarantined and excluded and converged
            and accounted >= injector.n_injected > 0
        ),
        injected=injector.n_injected,
        accounted=accounted,
        completed=bool(completed),
        detail="" if quarantined and excluded else f"adaptive={stats}",
    )


@_stage("refinement-stall")
def _stage_refine_stall(built, backend, workers):
    """Injected mixed-precision refinement stalls escalate to FP64.

    Two energies of a ``precision="mixed"`` solve are forced to stall
    (``refine_faults`` — the deterministic injection hook of the
    refinement engine).  Both must re-solve on the FP64 escalation twin
    *bit-identically* to a pure-FP64 per-point run, and the
    ``precision.*`` counters must account exactly one injected stall and
    one FP64 escalation per forced energy — wherever the chunk ran, via
    telemetry merge-back.
    """
    from ..observability import MetricsRegistry, use_metrics

    potential = np.zeros(built.n_atoms)
    # pinned fp64 so the stage holds under a $REPRO_PRECISION=mixed fleet
    ref_calc = _calc(built, backend, workers, method="rgf", precision="fp64")
    grid = ref_calc.energy_grid(potential, 0.1)
    ref = ref_calc.solve_bias(potential, 0.1, energy_grid=grid)
    faults = (float(grid.energies[3]), float(grid.energies[8]))
    registry = MetricsRegistry()
    calc = _calc(
        built, backend, workers, method="rgf",
        precision="mixed", refine_faults=faults,
    )
    with use_metrics(registry):
        res = calc.solve_bias(potential, 0.1, energy_grid=grid)
    snap = registry.snapshot()
    n_escalated = int(snap.total("precision.fp64_escalations"))
    n_injected = int(snap.total("precision.injected_stalls"))
    completed = np.all(np.isfinite(res.transmission)) and np.isfinite(
        res.current_a
    )
    # the escalated energies are FP64 per-point re-solves — bit-identical
    # to the pure-FP64 reference columns
    bitwise = all(
        np.array_equal(ref.transmission[:, i], res.transmission[:, i])
        for i in (3, 8)
    )
    counters = n_escalated == len(faults) and n_injected == len(faults)
    return ChaosStageResult(
        name="refinement-stall",
        ok=bool(completed) and bitwise and counters,
        injected=len(faults),
        accounted=n_escalated,
        completed=bool(completed),
        detail="" if bitwise and counters else (
            f"bitwise={bitwise} escalations={n_escalated} "
            f"injected_stalls={n_injected}"
        ),
    )


def _noop(x):
    """Picklable no-op used to warm process pools."""
    return x


_STAGES = (
    _stage_clean,
    _stage_bias,
    _stage_energy,
    _stage_distributed,
    _stage_comm,
    _stage_worker_hang,
    _stage_zero_copy,
    _stage_poisson,
    _stage_adaptive_wave,
    _stage_refine_stall,
)


# ----------------------------------------------------------------------
def run_campaign(
    backend: str = "serial",
    workers: int = 2,
    stages=None,
    verbose: bool = False,
) -> ChaosCampaignResult:
    """Run the chaos campaign; returns the per-stage scorecard.

    Parameters
    ----------
    backend : {"serial", "thread", "process"}
        Execution backend under test (the worker-hang stage is a no-op
        for ``"serial"``).
    workers : int
        Worker count for the pooled backends.
    stages : iterable of str or None
        Subset of stage names to run (None = all).
    verbose : bool
        Print each stage's result as it lands.
    """
    campaign = ChaosCampaignResult(backend=backend)
    built = _mini_built()
    wanted = set(stages) if stages is not None else None
    for runner in _STAGES:
        if wanted is not None and runner.stage_name not in wanted:
            continue
        t0 = time.perf_counter()
        try:
            result = runner(built, backend, workers)
        except Exception as exc:  # a stage crashing IS a failed stage
            result = ChaosStageResult(
                name=runner.stage_name,
                ok=False,
                completed=False,
                detail=f"{type(exc).__name__}: {exc}",
            )
        result.duration_s = time.perf_counter() - t0
        campaign.stages.append(result)
        if verbose:
            mark = "ok" if result.ok else "FAIL"
            print(f"[chaos] {result.name}: {mark} ({result.duration_s:.2f}s)")
    return campaign


def write_campaign_json(campaign: ChaosCampaignResult, path) -> None:
    """Persist the scorecard (the CI summary artifact)."""
    from pathlib import Path

    Path(path).write_text(json.dumps(campaign.to_dict(), indent=2) + "\n")
