"""Graceful-degradation ladders and their accounting.

When a :class:`~repro.resilience.health.HealthSentinel` trips (or a solve
throws) inside a production sweep, throwing the whole bias point away is
the *worst* answer — OMEN-class runs burn node-hours per point.  Instead
the transport layer steps down a ladder of increasingly conservative
solves and, as a last resort, quarantines the offending energy node and
reweights the quadrature:

1. **retry per-point** with a freshly assembled Hamiltonian and the
   ``robust`` surface-GF ladder (heals transient corruption and
   band-edge decimation stalls);
2. **dense oracle** — full dense inversion via
   :func:`repro.negf.dense_ref.dense_green_function` (orders of magnitude
   slower, numerically bulletproof);
3. **quarantine** — drop the energy node, rebuild the trapezoid weights
   on the surviving nodes, and account the gap.

Step 3 is bounded by a :class:`DegradationBudget`: a sweep that loses
more than the configured fraction of its quadrature is *wrong*, not
degraded, and fails with :class:`~repro.errors.DegradationBudgetError`.

Everything that happened is collected in a :class:`DegradationReport`
(mirroring :class:`~repro.resilience.report.ResilienceReport` for thrown
faults) which rides along ``TransportResult → SCFResult → IVCurve`` and
surfaces in ``repro doctor`` and the CLI result JSON.

NEGF imports stay inside function bodies — this module is imported by the
solver layer and must not create import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DegradationBudgetError

__all__ = [
    "DegradationReport",
    "DegradationBudget",
    "LADDER_EXCEPTIONS",
    "dense_oracle_solve",
    "corrupt_hamiltonian",
]

#: What the degradation ladder is allowed to absorb (in ``contain`` mode).
#: ``RuntimeError`` covers every typed :class:`~repro.errors.ReproError`
#: plus SuperLU's "factor is exactly singular"; ``ValueError`` covers
#: scipy's finite-entry input checks; ``ArithmeticError`` covers overflow
#: under ``np.errstate``.  :class:`DegradationBudgetError` is re-raised
#: explicitly by every handler — exceeding the budget must fail the sweep.
LADDER_EXCEPTIONS = (
    RuntimeError,
    ValueError,
    ArithmeticError,
    np.linalg.LinAlgError,
)


@dataclass
class DegradationReport:
    """Account of every self-healing action taken during a solve.

    Attributes
    ----------
    sentinel_trips : dict
        ``"site:kind" -> count`` of health-sentinel trips observed in the
        reporting window (see ``set_trips`` for the no-double-count
        contract).
    ladder_steps : dict
        ``rung -> count`` of degradation-ladder steps taken
        (``"per-point:robust"``, ``"dense-oracle"``,
        ``"chunk:per-point"``, ``"quadrature:reweight"``).
    quarantined_points : list of (k_index, energy)
        Energy nodes dropped from the quadrature.
    reweighted_grids : int
        Per-k grids whose trapezoid weights were rebuilt after quarantine.
    stragglers, speculative_wins, pool_restarts : int
        Elastic-execution events from the Thread/Process backends.
    """

    sentinel_trips: dict = field(default_factory=dict)
    ladder_steps: dict = field(default_factory=dict)
    quarantined_points: list = field(default_factory=list)
    reweighted_grids: int = 0
    stragglers: int = 0
    speculative_wins: int = 0
    pool_restarts: int = 0

    # -- recording -----------------------------------------------------

    def record_trip(self, key: str, n: int = 1) -> None:
        self.sentinel_trips[key] = self.sentinel_trips.get(key, 0) + int(n)

    def set_trips(self, counts: dict) -> None:
        """Replace the trip counts with an authoritative window total.

        Nested consumers (transport → SCF → I-V sweep) each observe a
        sentinel window that *contains* their children's windows, so a
        plain ``merge`` would double count.  Instead every level
        overwrites the merged counts with its own window total — exact
        because the windows nest.
        """
        if counts:
            self.sentinel_trips = dict(counts)

    def record_ladder(self, rung: str, n: int = 1) -> None:
        self.ladder_steps[rung] = self.ladder_steps.get(rung, 0) + int(n)

    def quarantine(self, k_index: int, energy: float) -> None:
        self.quarantined_points.append((int(k_index), float(energy)))

    # -- views ---------------------------------------------------------

    @property
    def total_events(self) -> int:
        return (
            sum(self.sentinel_trips.values())
            + sum(self.ladder_steps.values())
            + len(self.quarantined_points)
            + self.reweighted_grids
            + self.stragglers
            + self.speculative_wins
            + self.pool_restarts
        )

    def merge(self, other: "DegradationReport") -> None:
        """Fold another report into this one (counts add)."""
        for key, n in other.sentinel_trips.items():
            self.record_trip(key, n)
        for rung, n in other.ladder_steps.items():
            self.record_ladder(rung, n)
        self.quarantined_points.extend(other.quarantined_points)
        self.reweighted_grids += other.reweighted_grids
        self.stragglers += other.stragglers
        self.speculative_wins += other.speculative_wins
        self.pool_restarts += other.pool_restarts

    def to_dict(self) -> dict:
        return {
            "sentinel_trips": dict(self.sentinel_trips),
            "ladder_steps": dict(self.ladder_steps),
            "quarantined_points": [
                [int(ik), float(e)] for ik, e in self.quarantined_points
            ],
            "reweighted_grids": self.reweighted_grids,
            "stragglers": self.stragglers,
            "speculative_wins": self.speculative_wins,
            "pool_restarts": self.pool_restarts,
            "total_events": self.total_events,
        }

    def summary(self) -> str:
        if self.total_events == 0:
            return "degradation: clean (no sentinel trips, no ladder steps)"
        lines = [f"degradation: {self.total_events} events"]
        if self.sentinel_trips:
            body = ", ".join(
                f"{k}={v}" for k, v in sorted(self.sentinel_trips.items())
            )
            lines.append(f"  sentinel trips : {body}")
        if self.ladder_steps:
            body = ", ".join(
                f"{k}={v}" for k, v in sorted(self.ladder_steps.items())
            )
            lines.append(f"  ladder steps   : {body}")
        if self.quarantined_points:
            lines.append(
                f"  quarantined    : {len(self.quarantined_points)} energy "
                f"point(s), {self.reweighted_grids} grid(s) reweighted"
            )
        if self.stragglers or self.speculative_wins or self.pool_restarts:
            lines.append(
                f"  elastic exec   : {self.stragglers} straggler(s), "
                f"{self.speculative_wins} speculative win(s), "
                f"{self.pool_restarts} pool restart(s)"
            )
        return "\n".join(lines)


@dataclass
class DegradationBudget:
    """Bound on how much quadrature a sweep may lose before it is wrong.

    Attributes
    ----------
    max_quarantined_fraction : float
        Largest tolerable fraction of energy nodes dropped from any
        single per-k grid.
    max_quarantined_points : int or None
        Optional absolute cap per grid.
    min_surviving_points : int
        A grid needs at least this many nodes for the trapezoid rule to
        mean anything.
    """

    max_quarantined_fraction: float = 0.25
    max_quarantined_points: int | None = None
    min_surviving_points: int = 2

    def check(self, n_quarantined: int, n_total: int, context: str = "") -> None:
        """Raise :class:`DegradationBudgetError` when the loss exceeds budget."""
        if n_quarantined <= 0:
            return
        where = f" ({context})" if context else ""
        if n_total - n_quarantined < self.min_surviving_points:
            raise DegradationBudgetError(
                f"degradation budget exceeded{where}: only "
                f"{n_total - n_quarantined} of {n_total} energy nodes "
                f"survived quarantine (need >= {self.min_surviving_points})"
            )
        if (
            self.max_quarantined_points is not None
            and n_quarantined > self.max_quarantined_points
        ):
            raise DegradationBudgetError(
                f"degradation budget exceeded{where}: {n_quarantined} energy "
                f"nodes quarantined (cap {self.max_quarantined_points})"
            )
        fraction = n_quarantined / max(n_total, 1)
        if fraction > self.max_quarantined_fraction:
            raise DegradationBudgetError(
                f"degradation budget exceeded{where}: {fraction:.1%} of the "
                f"quadrature quarantined "
                f"(budget {self.max_quarantined_fraction:.1%})"
            )


def dense_oracle_solve(H, energy: float, eta: float = 1e-6):
    """Last-rung reference solve of one energy by full dense inversion.

    Returns an :class:`repro.negf.rgf.RGFResult` — the field set both the
    WF and RGF assembly paths consume — computed from the dense retarded
    Green's function with ``robust``-ladder contact self-energies.
    O((N m)^3): acceptable only because the ladder reaches this rung for
    a handful of poisoned points per sweep.
    """
    from ..negf.dense_ref import dense_green_function
    from ..negf.rgf import RGFResult
    from ..negf.self_energy import contact_self_energy

    energy = float(energy)
    sig_l = contact_self_energy(
        energy, H.diagonal[0], H.upper[0], side="left",
        method="robust", eta=eta,
    )
    sig_r = contact_self_energy(
        energy, H.diagonal[-1], H.upper[-1], side="right",
        method="robust", eta=eta,
    )
    G = dense_green_function(H, energy, sig_l.sigma, sig_r.sigma)
    n = H.total_size
    offsets = H.block_offsets()
    gam_l = np.zeros((n, n), dtype=complex)
    gam_r = np.zeros((n, n), dtype=complex)
    ml = sig_l.gamma.shape[0]
    mr = sig_r.gamma.shape[0]
    gam_l[:ml, :ml] = sig_l.gamma
    gam_r[offsets[-2]:offsets[-2] + mr, offsets[-2]:offsets[-2] + mr] = (
        sig_r.gamma
    )
    t = float(np.trace(gam_l @ G @ gam_r @ G.conj().T).real)
    A_L = G @ gam_l @ G.conj().T
    A_R = G @ gam_r @ G.conj().T
    return RGFResult(
        energy=energy,
        transmission=t,
        dos=-np.diag(G).imag / np.pi,
        spectral_left=np.diag(A_L).real / (2.0 * np.pi),
        spectral_right=np.diag(A_R).real / (2.0 * np.pi),
        n_channels_left=sig_l.n_open_channels(),
        n_channels_right=sig_r.n_open_channels(),
    )


def corrupt_hamiltonian(H, mode: str):
    """Numerical-fault injection: return a corrupted copy of ``H``.

    ``mode="nan"`` poisons the middle diagonal block with NaN (the silent
    breakdown every sentinel must catch); ``mode="illcond"`` adds a huge
    rank-one Hermitian perturbation, driving the block-LU condition
    estimate past any sane threshold while every entry stays finite.
    """
    from ..tb.hamiltonian import BlockTridiagonalHamiltonian

    diag = [np.array(d, dtype=complex) for d in H.diagonal]
    upper = [np.array(u, dtype=complex) for u in H.upper]
    mid = len(diag) // 2
    if mode == "nan":
        diag[mid] = np.full_like(diag[mid], complex(float("nan"), 0.0))
    elif mode == "illcond":
        m = diag[mid].shape[0]
        diag[mid] = diag[mid] + 1e14 * np.ones((m, m), dtype=complex)
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return BlockTridiagonalHamiltonian(diag, upper)
