"""Numerical-health sentinels for the hot solver kernels.

Typed exceptions (PR 1) only catch failures that *throw*.  The nastier
production killers are silent: a NaN that appears deep inside a block-LU
factor and propagates into the current integral, a surface-GF fixed point
whose residual quietly stops contracting, a Schur complement whose
condition number explodes near a band edge.  This module gives every hot
kernel a cheap, always-available health check:

* :class:`HealthSentinel` — a process-wide observer with three modes:

  - ``"off"``     : zero checks, the historical fast path;
  - ``"contain"`` : (default) record every trip into a bounded ledger and
    the ``health.*`` metrics, let the degradation ladder of
    :mod:`repro.resilience.degrade` heal the point;
  - ``"strict"``  : raise :class:`~repro.errors.NumericalBreakdownError`
    at the first trip (debugging / CI gating).

* ``check_finite`` / ``check_condition`` / ``check_residual`` — the three
  sentinel primitives instrumented into ``solvers/block_tridiagonal.py``,
  ``negf/surface_gf.py``, ``negf/rgf.py``, ``wf/qtbm.py`` and
  ``poisson/nonlinear.py``.

* ``condition_estimate`` — the classic 1-norm estimate
  ``cond1(A) ~ ||A||_1 * ||A^-1||_1``, essentially free because the hot
  kernels already hold both the matrix and its inverse.

Sentinels are pure observers: in ``contain`` mode they never modify a
value, so a run that trips nothing is bit-identical to a run with the
sentinel off.  Trip accounting uses a monotonically growing ledger with
``marker()`` / ``trips_since()`` so that nested consumers (transport →
SCF → I–V sweep) can each report the trips of their own window without
double counting.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..errors import NumericalBreakdownError
from ..observability.metrics import get_metrics

__all__ = [
    "HealthEvent",
    "HealthSentinel",
    "condition_estimate",
    "get_sentinel",
    "set_sentinel",
    "use_sentinel",
]

_MODES = ("off", "contain", "strict")


def condition_estimate(a, a_inv) -> float:
    """1-norm condition estimate ``||A||_1 * ||A^-1||_1``.

    Works on a single matrix or a stacked ``(..., m, m)`` batch; for a
    batch the worst (largest) estimate is returned.  Returns ``inf`` when
    either factor contains non-finite entries.
    """
    a = np.asarray(a)
    a_inv = np.asarray(a_inv)
    norm_a = np.abs(a).sum(axis=-2).max(axis=-1)
    norm_inv = np.abs(a_inv).sum(axis=-2).max(axis=-1)
    with np.errstate(invalid="ignore"):  # inf * 0 -> nan -> reported inf
        prod = np.asarray(norm_a * norm_inv, dtype=float)
    if prod.size == 0:
        return 0.0
    if not np.all(np.isfinite(prod)):
        return float("inf")
    return float(prod.max())


@dataclass(frozen=True)
class HealthEvent:
    """One sentinel trip: *where* (site), *what* (kind), *how bad* (value)."""

    seq: int
    site: str
    kind: str
    value: float = float("nan")
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "site": self.site,
            "kind": self.kind,
            "value": self.value,
            "detail": self.detail,
        }


class HealthSentinel:
    """Process-wide numerical-health observer (thread safe).

    Parameters
    ----------
    mode : {"off", "contain", "strict"}
        ``"contain"`` records trips for the degradation ladder;
        ``"strict"`` raises :class:`NumericalBreakdownError` immediately.
    cond_threshold : float
        1-norm condition estimate above which a factorization is flagged
        ill-conditioned (default ``1e12`` — far above anything a healthy
        nanowire Hamiltonian produces at double precision).
    residual_threshold : float
        Relative residual above which a converged-looking fixed point is
        flagged (default ``1e-6``; Sancho-Rubio residuals sit near 1e-12).
    max_events : int
        Ledger bound; trip *counts* keep growing past it, only per-event
        details stop being stored.
    """

    def __init__(
        self,
        mode: str = "contain",
        cond_threshold: float = 1e12,
        residual_threshold: float = 1e-6,
        max_events: int = 4096,
    ):
        if mode not in _MODES:
            raise ValueError(f"unknown sentinel mode {mode!r}; pick from {_MODES}")
        self.mode = mode
        self.cond_threshold = float(cond_threshold)
        self.residual_threshold = float(residual_threshold)
        self.max_events = int(max_events)
        self._lock = threading.Lock()
        self._events: list[HealthEvent] = []
        self._seq = 0

    # -- state ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    @property
    def strict(self) -> bool:
        return self.mode == "strict"

    @property
    def n_trips(self) -> int:
        return self._seq

    def marker(self) -> int:
        """Opaque position in the trip ledger; pass to :meth:`trips_since`."""
        return self._seq

    def events_since(self, marker: int = 0) -> list[HealthEvent]:
        with self._lock:
            return [e for e in self._events if e.seq >= marker]

    def trips_since(self, marker: int = 0) -> dict:
        """Trip counts keyed ``"site:kind"`` recorded after ``marker``."""
        counts: dict[str, int] = {}
        for ev in self.events_since(marker):
            key = f"{ev.site}:{ev.kind}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
            self._seq = 0

    # -- trip + checks -------------------------------------------------

    def trip(self, site: str, kind: str, value: float = float("nan"), detail: str = "") -> None:
        """Record one health violation; raise in strict mode."""
        with self._lock:
            event = HealthEvent(self._seq, site, kind, float(value), detail)
            self._seq += 1
            if len(self._events) < self.max_events:
                self._events.append(event)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc(f"health.{site}.{kind}")
        if self.strict:
            raise NumericalBreakdownError(
                f"health sentinel [{site}] tripped: {kind} (value={value:.3e}) {detail}".strip()
            )

    def check_finite(self, site: str, *arrays, detail: str = "") -> bool:
        """True when every array is fully finite; trips ``nonfinite`` otherwise."""
        for arr in arrays:
            a = np.asarray(arr)
            if a.size and not np.all(np.isfinite(a)):
                self.trip(site, "nonfinite", detail=detail)
                return False
        return True

    def check_condition(self, site: str, cond: float, detail: str = "") -> bool:
        """True when the condition estimate is below threshold."""
        if not np.isfinite(cond):
            self.trip(site, "nonfinite", value=cond, detail=detail)
            return False
        if cond > self.cond_threshold:
            self.trip(site, "ill_conditioned", value=cond, detail=detail)
            return False
        return True

    def check_residual(self, site: str, residual: float, detail: str = "") -> bool:
        """True when a post-solve residual is acceptably small."""
        if not np.isfinite(residual):
            self.trip(site, "nonfinite", value=residual, detail=detail)
            return False
        if residual > self.residual_threshold:
            self.trip(site, "residual", value=residual, detail=detail)
            return False
        return True

    def summary(self) -> str:
        counts = self.trips_since(0)
        if not counts:
            return f"health[{self.mode}]: no trips"
        body = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return f"health[{self.mode}]: {self._seq} trips ({body})"


_default_sentinel = HealthSentinel(mode="contain")
_sentinel = _default_sentinel


def get_sentinel() -> HealthSentinel:
    """The active process-wide sentinel (default: ``contain`` mode)."""
    return _sentinel


def set_sentinel(sentinel: HealthSentinel | None) -> HealthSentinel:
    """Install ``sentinel`` globally (None restores the default); returns it."""
    global _sentinel
    _sentinel = sentinel if sentinel is not None else _default_sentinel
    return _sentinel


@contextmanager
def use_sentinel(sentinel: HealthSentinel):
    """Temporarily install ``sentinel`` (tests, strict CI gates)."""
    previous = _sentinel
    set_sentinel(sentinel)
    try:
        yield sentinel
    finally:
        set_sentinel(previous)
