"""Deterministic, seedable fault injection.

Resilience code that is only exercised by real failures is dead code until
the worst possible moment.  :class:`FaultInjector` plants faults at named
*sites* in the execution layers (``"task"`` in the scheduler and the
distributed driver, ``"rank"`` at rank entry, ``"comm"`` in collectives,
``"bias"`` in the I-V engine) so every recovery path runs in tests and CI.

Determinism is by construction, not by call order: each (site, key)
decision hashes ``(seed, site, key)`` with BLAKE2 — the same seed always
faults the same tasks, no matter how the work is scheduled or retried.
By default a fired fault is *transient* (``once=True``): the first attempt
at a (site, key) fails and the retry succeeds, which is the common
machine-check / flaky-node mode.  ``once=False`` models hard faults that
persist until the task is quarantined.

Actions
-------
``"raise"``      raise :class:`repro.errors.TaskFailure`;
``"nan"``        tell the caller to corrupt the result with NaN;
``"illcond"``    tell the caller to wreck its operator's conditioning;
``"stall"``      sleep ``stall_seconds`` (straggler), then proceed;
``"hang"``       sleep ``hang_seconds`` (hung worker — long enough to
                 blow any sane backend deadline), then proceed;
``"dead_rank"``  raise :class:`repro.errors.RankFailure`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import RankFailure, TaskFailure

__all__ = ["InjectedFault", "FaultInjector", "non_finite", "nan_like"]

_ACTIONS = ("raise", "nan", "illcond", "stall", "hang", "dead_rank")


@dataclass(frozen=True)
class InjectedFault:
    """Record of one fired fault."""

    site: str
    key: object
    action: str


def _u01(seed: int, site: str, key, salt: str = "") -> float:
    """Order-independent uniform deviate in [0, 1) for a (site, key)."""
    payload = f"{seed}|{site}|{key!r}|{salt}".encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


class FaultInjector:
    """Plant deterministic faults at named execution sites.

    Parameters
    ----------
    seed : int
        Determinism seed; same seed -> same faults.
    rate : float
        Per-(site, key) fault probability for sites in ``sites``.
    actions : tuple of str
        Action pool for rate-based faults (chosen by a second hash).
    sites : tuple of str or None
        Sites subject to rate-based injection (None = all sites).
    plan : dict or None
        Explicit ``{(site, key): action}`` faults, e.g.
        ``{("rank", 2): "dead_rank"}`` — fires regardless of ``rate``.
    once : bool
        Transient faults: each (site, key) fires at most once (default).
    stall_seconds : float
        Duration of a ``"stall"`` fault.
    hang_seconds : float
        Duration of a ``"hang"`` fault (a hung worker; pick it longer
        than the backend deadline under test).
    max_faults : int or None
        Global cap on fired faults (None = unlimited).
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.0,
        actions: tuple = ("raise", "nan"),
        sites: tuple | None = None,
        plan: dict | None = None,
        once: bool = True,
        stall_seconds: float = 0.01,
        hang_seconds: float = 30.0,
        max_faults: int | None = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        for action in actions:
            if action not in _ACTIONS:
                raise ValueError(f"unknown fault action {action!r}")
        for action in (plan or {}).values():
            if action not in _ACTIONS:
                raise ValueError(f"unknown fault action {action!r}")
        self.seed = seed
        self.rate = rate
        self.actions = tuple(actions)
        self.sites = tuple(sites) if sites is not None else None
        self.plan = dict(plan or {})
        self.once = once
        self.stall_seconds = stall_seconds
        self.hang_seconds = hang_seconds
        self.max_faults = max_faults
        self.injected: list[InjectedFault] = []
        self._fired: set = set()

    # ------------------------------------------------------------------
    def targets(self, site: str) -> bool:
        """Whether any configured fault can ever fire at ``site``.

        Dispatch layers use this to route work to where the fault can
        actually be observed — e.g. energy-site faults must run through
        the parent's per-point degradation ladder, since a process
        pool's children cannot ship ladder accounting back.
        """
        if any(s == site for s, _ in self.plan):
            return True
        return self.rate > 0.0 and (self.sites is None or site in self.sites)

    def decide(self, site: str, key) -> str | None:
        """The action to inject at (site, key), or None for a clean pass."""
        if self.max_faults is not None and len(self.injected) >= self.max_faults:
            return None
        if self.once and (site, key) in self._fired:
            return None
        action = self.plan.get((site, key))
        if action is None and self.rate > 0.0:
            if self.sites is None or site in self.sites:
                if _u01(self.seed, site, key) < self.rate:
                    pick = _u01(self.seed, site, key, salt="action")
                    action = self.actions[int(pick * len(self.actions))]
        return action

    def fire(self, site: str, key) -> str | None:
        """Inject at (site, key): may raise, stall, or return a marker.

        Returns ``"nan"`` / ``"illcond"`` when the caller should corrupt
        its own result or operator, None for a clean pass.  ``"raise"``
        and ``"dead_rank"`` raise :class:`TaskFailure` /
        :class:`RankFailure` with ``injected=True``; ``"stall"`` and
        ``"hang"`` sleep in place and then pass clean.
        """
        action = self.decide(site, key)
        if action is None:
            return None
        self._fired.add((site, key))
        self.injected.append(InjectedFault(site, key, action))
        if action == "raise":
            raise TaskFailure(
                f"injected fault at {site}:{key!r}", key=key, injected=True
            )
        if action == "dead_rank":
            rank = key if isinstance(key, int) else -1
            raise RankFailure(
                f"injected rank failure at {site}:{key!r}",
                rank=rank,
                injected=True,
            )
        if action == "stall":
            time.sleep(self.stall_seconds)
            return None
        if action == "hang":
            time.sleep(self.hang_seconds)
            return None
        return action

    # ------------------------------------------------------------------
    @property
    def n_injected(self) -> int:
        """Number of faults fired so far."""
        return len(self.injected)

    def count(self, action: str | None = None) -> int:
        """Fired faults, optionally of one action type."""
        if action is None:
            return len(self.injected)
        return sum(1 for f in self.injected if f.action == action)


# ----------------------------------------------------------------------
def non_finite(obj) -> bool:
    """True if any float/complex leaf of ``obj`` is NaN or inf.

    Walks ndarrays, dataclasses, dicts, lists and tuples; non-numeric
    leaves are ignored.  This is the breakdown detector guarding every
    resilient execution path.
    """
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind in "fc":
            return bool(~np.all(np.isfinite(obj)))
        return False
    if isinstance(obj, (float, complex, np.floating, np.complexfloating)):
        return bool(~np.isfinite(obj))
    if isinstance(obj, dict):
        return any(non_finite(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return any(non_finite(v) for v in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return any(
            non_finite(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        )
    return False


def nan_like(obj):
    """A NaN-corrupted copy of ``obj`` (the payload of a ``"nan"`` fault)."""
    if isinstance(obj, np.ndarray):
        out = np.array(obj)
        if out.dtype.kind in "fc":
            out[...] = np.nan
        return out
    if isinstance(obj, (float, np.floating)):
        return float("nan")
    if isinstance(obj, (complex, np.complexfloating)):
        return complex("nan+nanj")
    if isinstance(obj, dict):
        return {k: nan_like(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [nan_like(v) for v in obj]
    if isinstance(obj, tuple):
        return tuple(nan_like(v) for v in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.replace(
            obj,
            **{
                f.name: nan_like(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
                if isinstance(
                    getattr(obj, f.name),
                    (float, complex, np.floating, np.complexfloating, np.ndarray),
                )
            },
        )
    return obj
