"""Phonons: Keating valence force field, dynamical matrices, thermal transport."""

from .dynamical import (
    AMU_KG,
    bulk_dynamical_matrix,
    bulk_phonon_bands,
    omega2_to_thz,
    wire_phonon_blocks,
)
from .keating import KEATING_PARAMS, KeatingModel
from .thermal import (
    PhononTransport,
    periodic_wire_dynamics,
    phonon_transmission,
    thermal_conductance,
)

__all__ = [
    "AMU_KG",
    "bulk_dynamical_matrix",
    "bulk_phonon_bands",
    "omega2_to_thz",
    "wire_phonon_blocks",
    "KEATING_PARAMS",
    "KeatingModel",
    "PhononTransport",
    "periodic_wire_dynamics",
    "phonon_transmission",
    "thermal_conductance",
]
