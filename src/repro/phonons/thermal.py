"""Ballistic phonon transport and Landauer thermal conductance.

With the wire dynamical matrix in slab block form, the phonon transmission
function Xi(omega) comes from exactly the same kernels as the electronic
T(E) — surface GFs and RGF on A = (omega^2 + i eta) I - D — and the
ballistic thermal conductance follows from the phonon Landauer formula

    G_th(T) = (1 / 2 pi) * int_0^inf  d(omega)  hbar omega
              * (d n_B / d T)  * Xi(omega)
            = (k_B^2 T / h) * int_0^inf dx  x^2 e^x / (e^x - 1)^2  Xi(x)

This realises the thermal-engineering workload of the authors' companion
papers (phonon spectra and ballistic thermal conductance of III-V and SiGe
nanowires) on the reproduction's shared transport stack.
"""

from __future__ import annotations

import numpy as np

from ..negf.rgf import RGFSolver
from ..tb.hamiltonian import BlockTridiagonalHamiltonian
from .dynamical import AMU_KG, omega2_to_thz, wire_phonon_blocks

__all__ = [
    "periodic_wire_dynamics",
    "phonon_transmission",
    "thermal_conductance",
    "PhononTransport",
]

_HBAR_J_S = 1.054571817e-34
_KB_J_K = 1.380649e-23


def periodic_wire_dynamics(
    device,
    alpha: float,
    beta: float,
    d0_nm: float,
    n_device_slabs: int,
    mass_override: np.ndarray | None = None,
) -> BlockTridiagonalHamiltonian:
    """Infinite-wire dynamical blocks replicated into a transport device.

    ``device`` must be a uniform slabbed wire at least 4 slabs long; the
    translation-invariant interior blocks (D11, D12) are extracted and
    tiled ``n_device_slabs`` times, giving a perfect-lead phonon device.
    ``mass_override`` (length = slab size * n_device_slabs) perturbs the
    device region only — the leads keep the host mass.
    """
    if device.n_slabs < 4:
        raise ValueError("need >= 4 slabs to extract interior blocks")
    full = wire_phonon_blocks(device, alpha, beta, d0_nm)
    d11 = full.diagonal[1]
    d12 = full.upper[1]
    if not np.allclose(full.diagonal[2], d11, atol=1e-8):
        raise ValueError("wire interior is not translation invariant")
    m = d11.shape[0]
    atoms_per_slab = m // 3
    diag = [d11.copy() for _ in range(n_device_slabs)]
    upper = [d12.copy() for _ in range(n_device_slabs - 1)]
    if mass_override is not None:
        mass_override = np.asarray(mass_override, dtype=float)
        if mass_override.shape != (atoms_per_slab * n_device_slabs,):
            raise ValueError("mass_override must cover every device atom")
        host = _host_mass(device)
        scale = np.repeat(np.sqrt(host / mass_override), 3)
        for s in range(n_device_slabs):
            sl = slice(s * m, (s + 1) * m)
            w = scale[sl]
            diag[s] = diag[s] * np.outer(w, w)
            if s < n_device_slabs - 1:
                w2 = scale[(s + 1) * m : (s + 2) * m]
                upper[s] = upper[s] * np.outer(w, w2)
    return BlockTridiagonalHamiltonian(diag, upper)


def _host_mass(device) -> float:
    from .keating import KEATING_PARAMS

    species = set(device.structure.species)
    masses = {KEATING_PARAMS[s]["mass_amu"] for s in species}
    if len(masses) != 1:
        raise ValueError("periodic_wire_dynamics needs a monatomic host")
    return float(masses.pop())


def phonon_transmission(
    dynamics: BlockTridiagonalHamiltonian,
    frequencies_thz: np.ndarray,
    eta: float | None = None,
) -> np.ndarray:
    """Phonon transmission Xi(nu) for frequencies in THz.

    The transport variable is omega^2 (N/m/amu units); a frequency nu maps
    to ``omega2 = (2 pi nu)^2 * AMU_KG`` in those units.  ``eta`` is the
    imaginary part added to omega^2 (auto-scaled if None).
    """
    frequencies_thz = np.atleast_1d(np.asarray(frequencies_thz, dtype=float))
    out = np.zeros_like(frequencies_thz)
    scale = max(float(np.abs(dynamics.diagonal[0]).max()), 1.0)
    for idx, nu in enumerate(frequencies_thz):
        omega2 = (2.0 * np.pi * nu * 1e12) ** 2 * AMU_KG
        eta_eff = eta if eta is not None else 1e-8 * scale + 1e-10 * omega2
        solver = RGFSolver(dynamics, eta=eta_eff)
        out[idx] = max(solver.transmission(float(omega2)), 0.0)
    return out


def thermal_conductance(
    dynamics: BlockTridiagonalHamiltonian,
    temperature_k: float,
    n_freq: int = 64,
    nu_max_thz: float | None = None,
) -> float:
    """Ballistic Landauer thermal conductance (W/K) at a temperature.

    Integrates hbar*omega * dn_B/dT * Xi(omega) / 2 pi over the phonon
    spectrum; ``nu_max_thz`` defaults to just above the largest eigenmode
    of one slab block (an upper bound on the band top).
    """
    if temperature_k <= 0:
        raise ValueError("temperature must be positive")
    if nu_max_thz is None:
        w2 = np.linalg.eigvalsh(dynamics.diagonal[0]).max()
        nu_max_thz = float(omega2_to_thz(np.array([w2]))[0]) * 1.1
    nus = np.linspace(nu_max_thz / n_freq, nu_max_thz, n_freq)
    xi = phonon_transmission(dynamics, nus)
    omegas = 2.0 * np.pi * nus * 1e12
    x = _HBAR_J_S * omegas / (_KB_J_K * temperature_k)
    # dn_B/dT = (x/T) e^x / (e^x - 1)^2 / ... expressed stably
    ex = np.exp(np.clip(x, None, 500.0))
    dndt = x / temperature_k * ex / (ex - 1.0) ** 2
    integrand = _HBAR_J_S * omegas * dndt * xi / (2.0 * np.pi)
    return float(np.trapezoid(integrand, omegas))


class PhononTransport:
    """Convenience facade: wire geometry -> Xi(nu) and G_th(T).

    Parameters
    ----------
    device : SlabbedDevice
        Uniform host wire (>= 4 slabs), monatomic species with tabulated
        Keating parameters.
    n_device_slabs : int
        Length of the transport region in slabs.
    mass_override : ndarray or None
        Per-device-atom masses (amu) for isotope/mass-disorder studies.
    """

    def __init__(
        self,
        device,
        n_device_slabs: int = 6,
        mass_override: np.ndarray | None = None,
    ):
        from .keating import KEATING_PARAMS

        species = device.structure.species[0]
        params = KEATING_PARAMS[species]
        d0 = float(
            np.linalg.norm(device.neighbor_table.displacement, axis=1).min()
        )
        self.dynamics = periodic_wire_dynamics(
            device,
            params["alpha"],
            params["beta"],
            d0,
            n_device_slabs,
            mass_override=mass_override,
        )

    def transmission(self, frequencies_thz) -> np.ndarray:
        """Xi(nu) at the given frequencies (THz)."""
        return phonon_transmission(self.dynamics, frequencies_thz)

    def conductance(self, temperature_k: float, **kwargs) -> float:
        """G_th(T) in W/K."""
        return thermal_conductance(self.dynamics, temperature_k, **kwargs)
