"""Keating valence-force-field: energies, forces and force constants.

The NEMO/OMEN ecosystem pairs its electronic tight-binding with a
valence-force-field (VFF) lattice model for strain relaxation and phonons
(cf. the authors' companion papers on nanowire phonon spectra and thermal
properties).  The classic two-parameter Keating form is implemented here:

    V = (3 alpha / 16 d^2) * sum_bonds   (r_ij . r_ij - d^2)^2
      + (3 beta  /  8 d^2) * sum_angles  (r_ij . r_ik + d^2/3)^2

with ``alpha`` the bond-stretching and ``beta`` the angle-bending constant
(N/m) and ``d`` the equilibrium bond length.  Energies and analytic forces
are exact; force-constant matrices (the Hessian) are obtained by central
finite differences of the analytic forces, which keeps the implementation
short and is verified against translational invariance (acoustic sum rule)
in the tests.

Units: positions nm, force constants N/m, energies in N/m * nm^2 = 1e-18 J
internally; the dynamical-matrix layer converts to THz/meV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lattice.neighbors import NeighborTable
from ..lattice.structure import AtomicStructure

__all__ = ["KeatingModel", "KEATING_PARAMS"]

#: Published Keating parameters (alpha, beta in N/m; mass in amu).
KEATING_PARAMS = {
    "Si": {"alpha": 48.5, "beta": 13.8, "mass_amu": 28.0855},
    "Ge": {"alpha": 38.7, "beta": 11.4, "mass_amu": 72.63},
    "GaAs": {"alpha": 41.2, "beta": 8.9, "mass_amu": None},  # per-species masses
    "Ga": {"mass_amu": 69.723},
    "As": {"mass_amu": 74.9216},
}


@dataclass
class KeatingModel:
    """Keating VFF on a fixed bond topology.

    Parameters
    ----------
    structure : AtomicStructure
        Equilibrium atom positions.
    table : NeighborTable
        Nearest-neighbour bonds (defines both bond and angle terms; angles
        are all pairs of bonds sharing a vertex).
    alpha, beta : float
        Keating constants (N/m).
    d0_nm : float
        Equilibrium bond length.
    """

    structure: AtomicStructure
    table: NeighborTable
    alpha: float
    beta: float
    d0_nm: float

    def __post_init__(self):
        if self.alpha <= 0 or self.beta < 0:
            raise ValueError("alpha must be > 0 and beta >= 0")
        if self.d0_nm <= 0:
            raise ValueError("equilibrium bond length must be positive")
        # per-atom bond lists (bond row indices)
        n = self.structure.n_atoms
        self._bonds_of = [self.table.bonds_of(a) for a in range(n)]
        self._cb = 3.0 * self.alpha / (16.0 * self.d0_nm**2)
        self._ca = 3.0 * self.beta / (8.0 * self.d0_nm**2)

    # ------------------------------------------------------------------
    def _bond_vectors(self, displacements: np.ndarray):
        """Current bond vectors given per-atom displacements (N, 3)."""
        d = self.table.displacement.copy()
        d += displacements[self.table.j] - displacements[self.table.i]
        return d

    def energy(self, displacements: np.ndarray | None = None) -> float:
        """Keating energy (1e-18 J) at displaced positions."""
        n = self.structure.n_atoms
        if displacements is None:
            displacements = np.zeros((n, 3))
        displacements = np.asarray(displacements, dtype=float)
        if displacements.shape != (n, 3):
            raise ValueError("displacements must be (n_atoms, 3)")
        r = self._bond_vectors(displacements)
        d2 = self.d0_nm**2
        # bond terms (each physical bond appears twice in the directed
        # table -> half weight)
        stretch = (np.einsum("ij,ij->i", r, r) - d2) ** 2
        e = 0.5 * self._cb * stretch.sum()
        # angle terms at each vertex
        for a in range(n):
            rows = self._bonds_of[a]
            ra = r[rows]
            for p in range(len(rows)):
                for q in range(p + 1, len(rows)):
                    cross = ra[p] @ ra[q] + d2 / 3.0
                    e += self._ca * cross * cross
        return float(e)

    def forces(self, displacements: np.ndarray | None = None) -> np.ndarray:
        """Analytic forces -dV/du, shape (n_atoms, 3) (nN = 1e-18 J / nm)."""
        n = self.structure.n_atoms
        if displacements is None:
            displacements = np.zeros((n, 3))
        displacements = np.asarray(displacements, dtype=float)
        if displacements.shape != (n, 3):
            raise ValueError("displacements must be (n_atoms, 3)")
        r = self._bond_vectors(displacements)
        d2 = self.d0_nm**2
        grad = np.zeros((n, 3))
        # bond terms: dV/dr = 2 c_b (r.r - d^2) * 2r, per directed bond/2
        s = np.einsum("ij,ij->i", r, r) - d2
        per_bond = (0.5 * self._cb * 2.0 * s)[:, None] * (2.0 * r)
        np.add.at(grad, self.table.j, per_bond)
        np.add.at(grad, self.table.i, -per_bond)
        # angle terms at vertex a with bonds to (j via r_p) and (k via r_q):
        # dV/du_j = 2 c_a x * r_q  (since r_p = x_j - x_a + const),
        # dV/du_k = 2 c_a x * r_p,  dV/du_a = -2 c_a x (r_p + r_q)
        for a in range(n):
            rows = self._bonds_of[a]
            ra = r[rows]
            js = self.table.j[rows]
            for p in range(len(rows)):
                for q in range(p + 1, len(rows)):
                    x = ra[p] @ ra[q] + d2 / 3.0
                    gp = 2.0 * self._ca * x * ra[q]
                    gq = 2.0 * self._ca * x * ra[p]
                    grad[js[p]] += gp
                    grad[js[q]] += gq
                    grad[a] -= gp + gq
        return -grad

    # ------------------------------------------------------------------
    def force_constants(self, h: float = 1e-5) -> np.ndarray:
        """Hessian Phi[(i,a),(j,b)] = d^2 V / du_ia du_jb, shape (3N, 3N).

        Central finite differences of the analytic forces; symmetrised.
        Units: N/m.
        """
        n = self.structure.n_atoms
        phi = np.zeros((3 * n, 3 * n))
        for i in range(n):
            for a in range(3):
                dp = np.zeros((n, 3))
                dp[i, a] = h
                f_plus = self.forces(dp)
                dp[i, a] = -h
                f_minus = self.forces(dp)
                phi[3 * i + a, :] = (
                    -(f_plus - f_minus).reshape(-1) / (2.0 * h)
                )
        return 0.5 * (phi + phi.T)
