"""Dynamical matrices and phonon band structures from the Keating VFF.

Phonons reuse the electronic machinery wholesale: the mass-weighted
dynamical matrix D plays the role of H, the eigenvalue is omega^2, and the
slab-blocked form of a wire's D is a
:class:`repro.tb.BlockTridiagonalHamiltonian` that the surface-GF and RGF
kernels consume unchanged — the deliberate architectural symmetry between
electron and phonon transport in atomistic device codes.

Units: force constants N/m, masses amu; frequencies returned in THz
(nu = omega / 2 pi).
"""

from __future__ import annotations

import numpy as np

from ..lattice.neighbors import build_neighbor_table
from ..lattice.slabs import SlabbedDevice
from ..lattice.structure import AtomicStructure
from ..lattice.zincblende import ZincblendeCell, conventional_cell
from ..lattice.device_geometry import replicate
from ..tb.hamiltonian import BlockTridiagonalHamiltonian
from .keating import KEATING_PARAMS, KeatingModel

__all__ = [
    "AMU_KG",
    "omega2_to_thz",
    "bulk_dynamical_matrix",
    "bulk_phonon_bands",
    "wire_phonon_blocks",
]

#: Atomic mass unit (kg).
AMU_KG: float = 1.66053906660e-27


def omega2_to_thz(omega2: np.ndarray) -> np.ndarray:
    """Convert omega^2 eigenvalues (N/m/amu units) to frequencies in THz.

    Negative eigenvalues (numerical noise at the acoustic Gamma point, or
    genuine instabilities) map to negative frequencies -sqrt(|w2|) so they
    remain visible.
    """
    omega2 = np.asarray(omega2, dtype=float)
    rate2 = omega2 / AMU_KG * 1.0  # (N/m/kg) = 1/s^2
    return np.sign(rate2) * np.sqrt(np.abs(rate2)) / (2.0 * np.pi) / 1e12


def _mass_vector(structure: AtomicStructure) -> np.ndarray:
    masses = []
    for s in structure.species:
        if s not in KEATING_PARAMS or KEATING_PARAMS[s].get("mass_amu") is None:
            raise KeyError(f"no atomic mass for species {s!r}")
        masses.append(KEATING_PARAMS[s]["mass_amu"])
    return np.repeat(np.array(masses), 3)


def bulk_dynamical_matrix(
    cell: ZincblendeCell,
    k: np.ndarray,
    alpha: float | None = None,
    beta: float | None = None,
    n_super: int = 3,
) -> np.ndarray:
    """Bloch dynamical matrix D(k) of the 2-atom primitive cell (6 x 6).

    Real-space force constants are computed on an ``n_super^3``
    conventional supercell (the Keating interaction range is two bond
    shells, so 3^3 is converged); rows of the two central primitive-cell
    atoms are Fourier summed with the atomic-gauge phases.

    ``alpha``/``beta`` default to the tabulated values of the anion species.
    """
    params = KEATING_PARAMS[cell.anion]
    alpha = params["alpha"] if alpha is None else alpha
    beta = params["beta"] if beta is None else beta
    k = np.asarray(k, dtype=float)

    unit = conventional_cell(cell)
    a = cell.a_nm
    sc = replicate(unit, n_super, n_super, n_super, [a] * 3)
    table = build_neighbor_table(sc, cell.bond_length_nm)
    model = KeatingModel(sc, table, alpha, beta, cell.bond_length_nm)
    phi = model.force_constants()

    # the two atoms of the central primitive cell: the anion at the centre
    # cell origin and its (+1/4,+1/4,+1/4) cation partner
    centre = (n_super // 2) * a
    pos = sc.positions
    i_anion = int(
        np.argmin(np.linalg.norm(pos - np.array([centre] * 3), axis=1))
    )
    i_cation = int(
        np.argmin(
            np.linalg.norm(pos - (pos[i_anion] + 0.25 * a), axis=1)
        )
    )
    basis = [i_anion, i_cation]
    masses = _mass_vector(sc).reshape(-1, 3)[:, 0]

    D = np.zeros((6, 6), dtype=complex)
    n_atoms = sc.n_atoms
    for s, i in enumerate(basis):
        for j in range(n_atoms):
            block = phi[3 * i : 3 * i + 3, 3 * j : 3 * j + 3]
            if np.abs(block).max() < 1e-12:
                continue
            rij = pos[j] - pos[i]
            phase = np.exp(1j * (k @ rij))
            # map atom j onto its basis index by sublattice
            sp = int(sc.sublattice[j])
            w = block * phase / np.sqrt(masses[i] * masses[j])
            D[3 * s : 3 * s + 3, 3 * sp : 3 * sp + 3] += w
    return 0.5 * (D + D.conj().T)


def bulk_phonon_bands(
    cell: ZincblendeCell,
    k_points: np.ndarray,
    **kwargs,
) -> np.ndarray:
    """Phonon frequencies (THz) along a k path, shape (nk, 6)."""
    out = []
    for k in np.atleast_2d(k_points):
        w2 = np.linalg.eigvalsh(bulk_dynamical_matrix(cell, k, **kwargs))
        out.append(omega2_to_thz(w2))
    return np.array(out)


def wire_phonon_blocks(
    device: SlabbedDevice,
    alpha: float,
    beta: float,
    d0_nm: float,
    mass_override: np.ndarray | None = None,
) -> BlockTridiagonalHamiltonian:
    """Mass-weighted dynamical matrix of a slabbed wire in block form.

    The returned object is a drop-in "Hamiltonian" for the transport
    kernels with energy variable omega^2 (in N/m/amu units).  Free-surface
    boundary conditions are automatic (missing bonds simply do not
    contribute).  ``mass_override`` (amu per atom) models isotope/mass
    disorder.

    End-slab force constants of a *finite* wire are boundary-corrupted;
    callers building an infinite/lead-periodic wire should construct the
    device 2 slabs longer and use
    ``BlockTridiagonalHamiltonian(diag[1:-1], upper[1:-2])``-style interior
    blocks, as :func:`repro.phonons.thermal.periodic_wire_dynamics` does.
    """
    structure = device.structure
    model = KeatingModel(
        structure, device.neighbor_table, alpha, beta, d0_nm
    )
    phi = model.force_constants()
    if mass_override is None:
        masses = _mass_vector(structure).reshape(-1, 3)[:, 0]
    else:
        masses = np.asarray(mass_override, dtype=float)
        if masses.shape != (structure.n_atoms,):
            raise ValueError("mass_override must have one entry per atom")
    weight = np.repeat(1.0 / np.sqrt(masses), 3)
    dyn = phi * np.outer(weight, weight)

    starts = device.slab_starts * 3
    diag = []
    upper = []
    for s in range(device.n_slabs):
        sl = slice(starts[s], starts[s + 1])
        diag.append(np.ascontiguousarray(dyn[sl, sl], dtype=complex))
        if s < device.n_slabs - 1:
            sl_next = slice(starts[s + 1], starts[s + 2])
            upper.append(np.ascontiguousarray(dyn[sl, sl_next], dtype=complex))
    return BlockTridiagonalHamiltonian(diag, upper)
