"""T2 — physics validation table: bulk band structure vs reference values.

Regenerates the material-validation table: band gaps, gap character and
conduction-valley positions of every parameterised material against the
accepted experimental/published values the parameterisations were fit to.
This is the "is the atomistic substrate right?" gate of the reproduction.
"""

import numpy as np
from conftest import print_experiment

from repro.io import format_table
from repro.tb import (
    bulk_band_edges,
    effective_mass,
    gaas_sp3s,
    germanium_sp3s,
    inas_sp3s,
    silicon_sp3d5s,
    silicon_sp3s,
)

#: (material factory, reference gap eV, direct?, valley)
REFERENCES = [
    (silicon_sp3s, 1.17, False, "X"),
    (silicon_sp3d5s, 1.13, False, "X"),
    (germanium_sp3s, 0.74, False, "L"),
    (gaas_sp3s, 1.52, True, "Gamma"),
    (inas_sp3s, 0.42, True, "Gamma"),
]


def compute_rows():
    rows = []
    checks = []
    for factory, ref_gap, ref_direct, ref_valley in REFERENCES:
        mat = factory()
        be = bulk_band_edges(mat, n_samples=81)
        valley = "Gamma" if be["direct"] else be["cbm_direction"]
        rows.append((
            mat.name,
            f"{be['gap']:.3f}",
            f"{ref_gap:.2f}",
            f"{(be['gap'] - ref_gap) / ref_gap * 100:+.1f}%",
            valley,
            ref_valley,
        ))
        checks.append(
            (abs(be["gap"] - ref_gap) / ref_gap < 0.12)
            and (valley == ref_valley)
        )
    return rows, checks


def test_t2_band_validation(benchmark):
    rows, checks = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_experiment(
        "T2",
        "bulk band-structure validation",
        "paper class: the TB parameterisations must reproduce the target"
        " gaps/valleys they were fitted to",
    )
    print(format_table(
        ["material", "gap (eV)", "reference", "error", "valley", "ref"],
        rows,
    ))
    assert all(checks)


def test_t2_effective_mass(benchmark):
    def masses():
        mat = gaas_sp3s()
        m_e = effective_mass(mat, np.zeros(3), [1, 0, 0], band_index=4)
        mat_si = silicon_sp3d5s()
        be = bulk_band_edges(mat_si, n_samples=81)
        # longitudinal electron mass at the Si X valley
        m_l = effective_mass(mat_si, be["cbm_k"], [1, 0, 0], band_index=4)
        return m_e, m_l

    m_e, m_l = benchmark.pedantic(masses, rounds=1, iterations=1)
    print_experiment("T2b", "effective masses")
    print(format_table(
        ["quantity", "computed (m0)", "reference"],
        [
            ("GaAs Gamma electron", f"{m_e:.3f}", "0.067 (sp3s* known high)"),
            ("Si X-valley longitudinal", f"{m_l:.3f}", "0.916"),
        ],
    ))
    assert 0.01 < m_e < 0.30
    assert 0.5 < m_l < 1.5
