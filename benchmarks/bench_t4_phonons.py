"""T4 (extension) — phonon spectra and ballistic thermal conductance.

The companion workload of the authors' ecosystem (nanowire phonon spectra
and thermal properties): regenerates the phonon-validation table (bulk Si
dispersion landmarks from the Keating VFF) and the thermal-engineering
figure (wire thermal conductance vs mass disorder), both running on the
same surface-GF/RGF kernels as the electronic experiments.
"""

import numpy as np
from conftest import print_experiment

from repro.io import format_table
from repro.lattice import ZincblendeCell, partition_into_slabs, zincblende_nanowire
from repro.phonons import PhononTransport, bulk_phonon_bands

SI = ZincblendeCell(0.5431, "Si", "Si")


def test_t4_bulk_phonon_landmarks(benchmark):
    def landmarks():
        kx = 2 * np.pi / SI.a_nm
        gamma = bulk_phonon_bands(SI, np.zeros((1, 3)))[0]
        x = bulk_phonon_bands(SI, np.array([[kx, 0.0, 0.0]]))[0]
        k_small = 0.1
        f_small = bulk_phonon_bands(SI, np.array([[k_small, 0, 0]]))[0]
        v = 2 * np.pi * f_small[:3] * 1e12 / (k_small * 1e9)
        return gamma, x, v

    gamma, x, v = benchmark.pedantic(landmarks, rounds=1, iterations=1)
    rows = [
        ("Raman LTO(Gamma) (THz)", f"{gamma[3]:.2f}", "15.5",
         "Keating underestimates"),
        ("TA(X) (THz)", f"{x[0]:.2f}", "4.5", "Keating overestimates"),
        ("LA=LO(X) degeneracy (THz)", f"{x[2]:.2f} = {x[3]:.2f}", "12.3",
         "exact degeneracy reproduced"),
        ("v_TA[100] (m/s)", f"{v[0]:.0f}", "5840", ""),
        ("v_LA[100] (m/s)", f"{v[2]:.0f}", "8430", ""),
    ]
    print_experiment(
        "T4a",
        "bulk Si phonon landmarks (Keating alpha=48.5, beta=13.8 N/m)",
    )
    print(format_table(["quantity", "computed", "experiment", "note"], rows))
    assert abs(gamma[3] - gamma[5]) < 1e-3  # LTO triplet
    assert abs(x[2] - x[3]) < 1e-2  # LA-LO degeneracy at X
    assert 4000 < v[0] < 7000
    assert 6000 < v[2] < 9500


def test_t4_thermal_conductance_vs_disorder(benchmark):
    def sweep():
        wire = zincblende_nanowire(SI, 5, 1, 1)
        dev = partition_into_slabs(wire, SI.a_nm, SI.bond_length_nm)
        pt = PhononTransport(dev, n_device_slabs=6)
        g_clean = pt.conductance(300.0, n_freq=24)
        atoms = pt.dynamics.diagonal[0].shape[0] // 3 * 6
        rng = np.random.default_rng(7)
        rows = [("0.0", g_clean, 1.0)]
        for frac in (0.1, 0.3):
            masses = np.where(rng.random(atoms) < frac, 72.63, 28.0855)
            pt_d = PhononTransport(dev, n_device_slabs=6, mass_override=masses)
            g = pt_d.conductance(300.0, n_freq=24)
            rows.append((f"{frac}", g, g / g_clean))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_experiment(
        "T4b",
        "wire thermal conductance vs mass disorder (300 K)",
        "paper-ecosystem shape: ballistic G_th collapses with isotope/alloy"
        " mass disorder",
    )
    print(format_table(
        ["heavy fraction", "G_th (W/K)", "vs pristine"],
        [(r[0], f"{r[1]:.3e}", f"{r[2]:.3f}") for r in rows],
    ))
    assert rows[0][1] > 0
    assert all(r[2] < 0.5 for r in rows[1:])
