"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the reconstructed SC'11
evaluation (see DESIGN.md section 4) and prints it in a uniform format so
EXPERIMENTS.md can quote the output directly.  All benchmarks use the
pytest-benchmark fixture so ``pytest benchmarks/ --benchmark-only`` runs
the complete harness.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import DeviceSpec, TransportCalculation, build_device


def print_experiment(experiment_id: str, table: str, notes: str = "") -> None:
    """Uniform banner + table output for EXPERIMENTS.md."""
    line = "=" * 72
    print(f"\n{line}\n[{experiment_id}] {table}")
    if notes:
        print(notes)
    print(line)


def record_baseline(name: str, metrics: dict) -> Path:
    """Persist measured metrics of a benchmark as ``BENCH_<name>.json``.

    Baselines land in ``benchmarks/baselines/`` (override with the
    ``REPRO_BENCH_DIR`` environment variable) so an optimisation PR can
    diff its measured sustained-Flop/s and per-kernel counts against the
    committed run.  ``metrics`` is typically the
    :func:`repro.observability.flat_metrics` dict of a traced run, plus
    any benchmark-specific figures.
    """
    directory = Path(
        os.environ.get("REPRO_BENCH_DIR", Path(__file__).parent / "baselines")
    )
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    with open(path, "w") as fh:
        json.dump(metrics, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


@pytest.fixture(scope="session")
def fet_small():
    """The ~50-atom grid-material FET used by the measured benches."""
    spec = DeviceSpec(
        name="bench-nwfet",
        n_x=12,
        n_y=2,
        n_z=2,
        spacing_nm=0.25,
        source_cells=4,
        drain_cells=4,
        gate_cells=(4, 7),
        donor_density_nm3=0.05,
        material_params={"m_rel": 0.3},
    )
    return build_device(spec)


@pytest.fixture(scope="session")
def fet_transport(fet_small):
    """Standard WF transport calculation for the small FET."""
    return TransportCalculation(fet_small, method="wf", n_energy=81)


def grid_transport_system(n_x=8, n_yz=3, barrier=0.1, m_rel=0.3, spacing=0.25):
    """A single-band barrier device Hamiltonian for kernel benchmarks."""
    from repro.lattice import partition_into_slabs, rectangular_grid_device
    from repro.tb import build_device_hamiltonian, single_band_material

    mat = single_band_material(m_rel=m_rel, spacing_nm=spacing)
    s = rectangular_grid_device(spacing, n_x, n_yz, n_yz)
    dev = partition_into_slabs(s, spacing, spacing)
    pot = np.zeros(s.n_atoms)
    slab = dev.slab_of_atom()
    mid = dev.n_slabs // 2
    pot[(slab >= mid - 1) & (slab <= mid + 1)] = barrier
    return build_device_hamiltonian(dev, mat, potential=pot)
