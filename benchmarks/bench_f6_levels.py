"""F6 — efficiency of the four parallelisation levels.

The paper's parallelisation analysis: the outer levels (bias, momentum,
energy) scale near-ideally because their work items are independent, while
the spatial (SplitSolve) level is sub-linear (serial interface system).
Regenerated as:

* modelled per-level isolation: speedup of 16x more ranks pushed through
  each level alone;
* measured load balancing at the energy level: static block assignment vs
  greedy LPT scheduling on *measured* per-energy task costs — the cost
  spread near band edges is real, and greedy recovers most of the loss.
"""

import numpy as np
from conftest import print_experiment

from repro.io import format_table
from repro.parallel import greedy_balance, makespan, run_tasks, static_blocks
from repro.perf import JAGUAR_XT5, TransportWorkload, predict
from repro.wf import WFSolver


def test_f6_modelled_level_isolation(benchmark):
    def isolate():
        rows = []
        scale = 16
        cases = [
            ("bias", dict(n_bias=scale, n_k=1, n_energy=1)),
            ("momentum", dict(n_bias=1, n_k=scale, n_energy=1)),
            ("energy", dict(n_bias=1, n_k=1, n_energy=scale)),
            ("spatial", dict(n_bias=1, n_k=1, n_energy=1)),
        ]
        for name, sizes in cases:
            w = TransportWorkload(
                n_slabs=130, block_size=4000, n_channels=30,
                algorithm="wf", **sizes,
            )
            r1 = predict(w, JAGUAR_XT5, 1)
            rN = predict(w, JAGUAR_XT5, scale, max_spatial=scale)
            speedup = r1.walltime_s / rN.walltime_s
            rows.append(
                (name, "x".join(map(str, rN.groups)), f"{speedup:.1f}",
                 f"{speedup / scale * 100:.0f}%")
            )
        return rows

    rows = benchmark.pedantic(isolate, rounds=1, iterations=1)
    print_experiment(
        "F6a",
        "per-level speedup at 16 ranks (each level isolated)",
        "paper shape: outer levels ~ideal, spatial level Amdahl-limited",
    )
    print(format_table(["level", "groups", "speedup (x16 ranks)", "efficiency"], rows))
    effs = {r[0]: float(r[3][:-1]) for r in rows}
    speedups = {r[0]: float(r[2]) for r in rows}
    assert effs["bias"] > 90
    assert effs["momentum"] > 90
    assert effs["energy"] > 90
    assert effs["spatial"] < 80  # visibly sub-ideal (Amdahl interface)
    assert speedups["spatial"] > 1.5  # but still a net win


def test_f6_measured_load_balance(benchmark, fet_small, fet_transport):
    """Static vs greedy scheduling on measured per-energy costs."""
    H = fet_transport.hamiltonian(np.zeros(fet_small.n_atoms))
    solver = WFSolver(H)
    grid = fet_transport.energy_grid(np.zeros(fet_small.n_atoms), 0.1)
    energies = list(grid.energies[:48])

    report = benchmark.pedantic(
        lambda: run_tasks(energies, lambda e: solver.solve(float(e))),
        rounds=1, iterations=1,
    )
    costs = report.wall_times
    rows = []
    for p in (4, 8, 16):
        m_static = makespan(costs, static_blocks(costs, p))
        m_greedy = makespan(costs, greedy_balance(costs, p))
        ideal = costs.sum() / p
        rows.append((
            p,
            f"{ideal / m_static * 100:.0f}%",
            f"{ideal / m_greedy * 100:.0f}%",
            f"{m_static / m_greedy:.2f}x",
        ))
    spread = costs.max() / costs.min()
    print_experiment(
        "F6b",
        "energy-level load balance: static blocks vs greedy LPT",
        f"measured per-energy cost spread: max/min = {spread:.2f} "
        "(band-edge points cost more)",
    )
    print(format_table(
        ["workers", "static efficiency", "greedy efficiency", "greedy gain"],
        rows,
    ))
    # greedy must never lose to static
    assert all(float(r[3][:-1]) >= 0.99 for r in rows)
