"""F5 — the headline: sustained performance up to ~1.44 PFlop/s.

The paper's Gordon Bell number is (counted flops)/(wall time) at 221,400
Cray XT5 cores: 1.44 PFlop/s, 62% of the machine's 2.33 PFlop/s peak.
Regenerated from the model (counted kernel flops + decomposition + machine
model — NOT fitted to the paper's curve; see DESIGN.md), plus the measured
local sustained rate under the identical accounting convention.
"""

import time

import numpy as np
from conftest import print_experiment, record_baseline

from repro.core import TransportCalculation
from repro.io import format_si, format_table
from repro.observability import Tracer, flat_metrics, use_tracer
from repro.perf import JAGUAR_XT5, TransportWorkload, predict

PAPER_SUSTAINED = 1.44e15
PAPER_FRACTION = 0.62


def test_f5_sustained_petaflops(benchmark):
    workload = TransportWorkload(
        n_slabs=130, block_size=4000, n_bias=15, n_k=21, n_energy=702,
        n_channels=30, algorithm="wf", n_scf_iterations=3,
    )
    ranks = [8192, 32768, 65536, 131072, 221130]
    reports = benchmark.pedantic(
        lambda: [predict(workload, JAGUAR_XT5, p) for p in ranks],
        rounds=1, iterations=1,
    )
    rows = [
        (
            r.n_ranks,
            format_si(r.sustained_flops, "Flop/s"),
            f"{r.fraction_of_peak * 100:.1f}%",
            format_si(r.n_ranks * JAGUAR_XT5.flops_per_core, "Flop/s"),
        )
        for r in reports
    ]
    headline = reports[-1]
    print_experiment(
        "F5",
        "sustained Flop/s vs core count (the 1.44 PFlop/s headline)",
        f"paper: {format_si(PAPER_SUSTAINED, 'Flop/s')} at 221,400 cores "
        f"({PAPER_FRACTION:.0%} of peak)  |  model: "
        f"{format_si(headline.sustained_flops, 'Flop/s')} "
        f"({headline.fraction_of_peak:.0%} of used peak)",
    )
    print(format_table(
        ["cores", "sustained", "fraction of used peak", "used peak"], rows,
    ))
    # reproduction target: the petaflop saturation point within ~15%
    assert abs(headline.sustained_flops - PAPER_SUSTAINED) < 0.15 * PAPER_SUSTAINED
    assert abs(headline.fraction_of_peak - PAPER_FRACTION) < 0.08
    # monotone growth of sustained performance with machine size
    sustained = [r.sustained_flops for r in reports]
    assert all(b > a for a, b in zip(sustained[:-1], sustained[1:]))


def test_f5_measured_local_grounding(benchmark, fet_small):
    """The same counted-flops convention measured on this machine.

    Runs the solve under a live tracer so the *instrumented* kernel counts
    (actual Sancho-Rubio iterations, actual injected channels) sit next to
    the analytic ledger the flop model charges; the traced metrics become
    the ``BENCH_f5_local`` measured baseline.
    """
    tc = TransportCalculation(fet_small, method="wf", n_energy=41)
    pot = np.zeros(fet_small.n_atoms)

    def run():
        tracer = Tracer()
        t0 = time.perf_counter()
        with use_tracer(tracer):
            res = tc.solve_bias(pot, v_drain=0.1)
        return res.flops.total, tracer, time.perf_counter() - t0

    analytic, tracer, dt = benchmark.pedantic(run, rounds=1, iterations=1)
    measured = tracer.total_flops
    sustained = measured / dt
    path = record_baseline("f5_local", flat_metrics(tracer))
    print_experiment(
        "F5b",
        "measured local sustained rate (grounding)",
        f"{format_si(measured, 'Flop')} measured "
        f"({format_si(analytic, 'Flop')} analytic) in {dt:.2f} s -> "
        f"{format_si(sustained, 'Flop/s')} on one Python process; "
        f"baseline -> {path.name}",
    )
    # numpy/BLAS on one core: somewhere between 10 MFlop/s and 100 GFlop/s
    assert 1e7 < sustained < 1e11
    # the analytic ledger (which assumes a fixed surface-GF iteration
    # count) and the instrumented counts must agree to within a factor ~2
    assert 0.5 < measured / analytic < 2.0
