"""F7 — self-consistency: Poisson-transport convergence and mixing ablation.

Regenerates the convergence figure: SCF residual vs iteration for the
nanowire FET at several bias points, and the Anderson-vs-linear mixing
ablation (DESIGN.md section 5).  Reproduction targets: geometric residual
decay, convergence within tens of iterations at every bias, and Anderson
needing no more iterations than plain damped mixing.
"""

import numpy as np
from conftest import print_experiment

from repro.core import SelfConsistentSolver
from repro.io import format_table


def test_f7_residual_histories(benchmark, fet_small, fet_transport):
    biases = [(-0.4, 0.05), (-0.15, 0.05), (0.0, 0.1)]

    def run_all():
        scf = SelfConsistentSolver(fet_small, fet_transport)
        return [
            (vg, vd, scf.run(vg, vd, continuation_step=0.0))
            for vg, vd in biases
        ]

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for vg, vd, out in outcomes:
        hist = " ".join(f"{r:.0e}" for r in out.residuals[:8])
        rows.append((
            f"({vg:+.2f}, {vd:.2f})",
            "yes" if out.converged else "NO",
            out.n_iterations,
            f"{out.residuals[-1]:.1e}",
            hist,
        ))
    print_experiment(
        "F7a",
        "SCF residual vs iteration at three bias points",
        "max|delta phi| (V) per Gummel iteration; Anderson-accelerated",
    )
    print(format_table(
        ["(V_G, V_D)", "converged", "iters", "final residual",
         "first 8 residuals"],
        rows,
    ))
    for _, _, out in outcomes:
        assert out.converged
        assert out.residuals[-1] < out.residuals[0]


def test_f7_mixing_ablation(benchmark, fet_small, fet_transport):
    def ablate():
        rows = []
        for mixing in ("anderson", "linear"):
            scf = SelfConsistentSolver(
                fet_small, fet_transport, mixing=mixing, max_iterations=60
            )
            out = scf.run(-0.15, 0.05, continuation_step=0.0)
            rows.append((mixing, "yes" if out.converged else "NO",
                         out.n_iterations, f"{out.residuals[-1]:.1e}"))
        return rows

    rows = benchmark.pedantic(ablate, rounds=1, iterations=1)
    print_experiment(
        "F7b",
        "mixing ablation: Anderson vs plain damped (same bias point)",
    )
    print(format_table(["mixer", "converged", "iterations", "final"], rows))
    anderson_iters = rows[0][2]
    linear_iters = rows[1][2]
    assert rows[0][1] == "yes"
    assert anderson_iters <= linear_iters


def test_f7_warm_start(benchmark, fet_small, fet_transport):
    def warm():
        scf = SelfConsistentSolver(fet_small, fet_transport)
        cold = scf.run(-0.2, 0.05)
        warm = scf.run(-0.18, 0.05, phi0=cold.phi)
        return cold, warm

    cold, warm = benchmark.pedantic(warm, rounds=1, iterations=1)
    print_experiment(
        "F7c",
        "warm-start acceleration (bias-sweep continuation)",
        f"cold start: {cold.n_iterations} iterations; warm start from the "
        f"neighbouring bias: {warm.n_iterations}",
    )
    assert warm.n_iterations <= cold.n_iterations
