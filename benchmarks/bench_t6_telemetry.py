"""T6 — telemetry merge-back: instrumentation overhead on the hot path.

The worker-capture design (ISSUE 8) made process-backend counters exact:
every chunk task runs under a fresh tracer/metrics pair whose contents
travel back as a pickled :class:`TelemetryDelta` (or a shared-memory
sidecar row on the zero-copy path) and merge into the parent registries.
That is real work on the hot path — extra pickling, an extra shared
segment, span absorption — so this benchmark measures what exactness
costs:

* **merge-back overhead** — wall time of a process-backend bias solve
  with tracer+metrics active vs the same solve uninstrumented, on both
  the pickled and the zero-copy dispatch paths.  The design target is
  < 2% on production-sized solves, where the fixed per-solve costs
  (sidecar segment allocation, delta pickling) vanish into seconds of
  kernel time; the smoke workload finishes in ~100 ms, so the assertion
  bar is a loose 20% that still catches accidental O(n) regressions;
* **delta volume** — how many deltas/spans merged and how many bytes of
  telemetry crossed the process boundary per solve.

``--smoke`` records everything as the ``BENCH_telemetry`` measured
baseline.
"""

import time

import numpy as np
from conftest import print_experiment, record_baseline

from repro.core import DeviceSpec, TransportCalculation, build_device
from repro.observability import (
    MetricsRegistry,
    Tracer,
    use_metrics,
    use_tracer,
)

#: Loose CI bar for the ~100 ms smoke solve; the design target is < 2%
#: on production-sized solves (fixed costs amortize with kernel time).
MAX_OVERHEAD_FRACTION = 0.20


def _built(n_x=14):
    spec = DeviceSpec(
        name="bench-telemetry",
        n_x=n_x,
        n_y=2,
        n_z=2,
        spacing_nm=0.25,
        source_cells=4,
        drain_cells=4,
        gate_cells=(5, n_x - 5),
        donor_density_nm3=0.05,
        material_params={"m_rel": 0.3},
    )
    return build_device(spec)


def _best_of(fn, repeats):
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _overhead_report(built, n_energy=31, workers=2, repeats=3,
                     zero_copy=False):
    """Instrumented vs bare process-backend solve on one dispatch path."""
    tc = TransportCalculation(
        built, method="rgf", n_energy=n_energy,
        backend="process", workers=workers, zero_copy=zero_copy,
    )
    pot = np.zeros(built.n_atoms)
    grid = tc.energy_grid(pot, 0.05)
    tc.solve_bias(pot, 0.05, energy_grid=grid)  # warm the pool

    base_s, base = _best_of(
        lambda: tc.solve_bias(pot, 0.05, energy_grid=grid), repeats
    )

    def instrumented():
        tracer, registry = Tracer(), MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            res = tc.solve_bias(pot, 0.05, energy_grid=grid)
        return res, tracer, registry.snapshot()

    inst_s, (inst, tracer, snap) = _best_of(instrumented, repeats)

    # exactness comes first: instrumentation must not perturb physics
    np.testing.assert_array_equal(base.transmission, inst.transmission)

    path = "zero_copy" if zero_copy else "pickled"
    deltas = sum(v for k, v in snap.counters.items()
                 if k.startswith("telemetry.deltas_merged"))
    # zero-copy deltas travel in the sidecar (falling back to the pool
    # as "overflow"); histograms flatten to <key>.count / <key>.mean
    flat = snap.flat()
    delta_bytes = sum(
        flat.get(f"telemetry.delta_bytes{{path={lane}}}.count", 0.0)
        * flat.get(f"telemetry.delta_bytes{{path={lane}}}.mean", 0.0)
        for lane in (("sidecar", "overflow") if zero_copy else ("pickled",))
    )
    overhead = (inst_s - base_s) / base_s if base_s > 0 else 0.0
    return {
        f"{path}.base_wall_time_s": base_s,
        f"{path}.instrumented_wall_time_s": inst_s,
        f"{path}.overhead_fraction_s": overhead,
        f"{path}.deltas_merged": float(deltas),
        f"{path}.spans_merged": snap.counter("telemetry.spans_merged"),
        f"{path}.delta_bytes": float(delta_bytes),
        f"{path}.counted_flops": float(sum(tracer.counter.counts.values())),
    }


def test_t6_merge_back_exact_and_cheap():
    """Counters survive the process boundary without distorting timing."""
    report = _overhead_report(
        _built(n_x=12), n_energy=21, workers=2, repeats=2
    )
    assert report["pickled.deltas_merged"] > 0, report
    assert report["pickled.counted_flops"] > 0, report
    # generous sanity bound: instrumentation must not blow up the solve
    assert report["pickled.overhead_fraction_s"] < 1.0, report


def _smoke():
    built = _built()
    report = {"n_energy": 61, "workers": 2}
    report.update(_overhead_report(
        built, n_energy=61, repeats=3, zero_copy=False))
    report.update(_overhead_report(
        built, n_energy=61, repeats=3, zero_copy=True))
    for path in ("pickled", "zero_copy"):
        assert report[f"{path}.deltas_merged"] > 0, report
        assert report[f"{path}.overhead_fraction_s"] < \
            MAX_OVERHEAD_FRACTION, report
    out = record_baseline("telemetry", report)
    print_experiment(
        "T6/telemetry",
        "merge-back overhead "
        f"pickled {report['pickled.overhead_fraction_s'] * 100:+.1f}% "
        f"({report['pickled.base_wall_time_s'] * 1e3:.0f} ms -> "
        f"{report['pickled.instrumented_wall_time_s'] * 1e3:.0f} ms), "
        f"zero-copy {report['zero_copy.overhead_fraction_s'] * 100:+.1f}% "
        f"({report['zero_copy.base_wall_time_s'] * 1e3:.0f} ms -> "
        f"{report['zero_copy.instrumented_wall_time_s'] * 1e3:.0f} ms); "
        f"{report['pickled.deltas_merged']:.0f} deltas, "
        f"{report['pickled.delta_bytes'] / 1e3:.1f} kB telemetry/solve",
        notes=f"baseline -> {out}",
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="measure merge-back overhead on both dispatch paths and "
             "write BENCH_telemetry.json",
    )
    args = parser.parse_args()
    if args.smoke:
        _smoke()
    else:
        parser.error("run under pytest for the assertion-only check, "
                     "or pass --smoke")
