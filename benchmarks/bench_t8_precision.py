"""T8 — mixed-precision transport: speedup vs FP64 at certified accuracy.

The ``precision="mixed"`` execution mode factors and solves the batched
block-tridiagonal systems in complex64 and then runs FP64 iterative
refinement on the injection slivers until a backward-error target is
met, escalating any uncertifiable energy to the full-FP64 path.  This
benchmark prices the trade on a warm-cache energy sweep of a mid-size
barrier device (the regime the paper's throughput numbers live in,
where contact self-energies are cached and the block factorizations
dominate):

* **speedup** — best-of-N wall time of a 128-energy batched sweep,
  FP64 vs mixed, same solver configuration, warm
  :class:`repro.parallel.SelfEnergyCache` on both sides;
* **accuracy** — relative integrated-current error of the mixed sweep
  against the FP64 one (Landauer integral over the same window), plus
  the worst per-energy transmission error and the refinement counters
  (iterations, certified points, escalations) for the sweep;
* **escalation bit-identity** — on a small device, two energies forced
  to stall via ``refine_faults`` must re-solve bit-identically to a
  pure-FP64 run on every backend (serial, thread, process,
  process+zero-copy) with exactly one ``precision.fp64_escalations``
  and one ``precision.injected_stalls`` per forced energy surviving
  telemetry merge-back;
* **plan bytes** — shared-memory execution-plan size per precision
  mode: the complex64 (``fp32``) plan must ship at most 60% of the
  FP64 plan's bytes (blocks halve; grid/meta overhead is constant).

The acceptance bar is a >= 1.5x warm-sweep speedup at <= 1e-8 relative
integrated-current error.  ``--smoke`` records the full report as the
``BENCH_precision`` measured baseline.
"""

import time

import numpy as np
from conftest import grid_transport_system, print_experiment, record_baseline

from repro.core import DeviceSpec, TransportCalculation, build_device
from repro.negf import RGFSolver, landauer_current
from repro.observability import MetricsRegistry, use_metrics
from repro.parallel import SelfEnergyCache
from repro.physics.grids import uniform_grid

#: Sweep configuration: in-band window of the n_yz=5 grid device (block
#: size 25, past the ~24 threshold where complex64 batched GEMM pulls
#: ahead of complex128), with broadening fine enough that the fp32
#: factors are genuinely stressed.
N_X = 96
N_YZ = 5
BARRIER = 0.15
ETA = 1e-5
E_MIN, E_MAX = 1.70, 4.40
N_ENERGY = 128
BEST_OF = 3
#: Acceptance bars (ISSUE 10).
MIN_SPEEDUP = 1.5
MAX_REL_CURRENT = 1e-8
MAX_PLAN_RATIO = 0.6
#: Landauer window parameters for the integrated-current error.
MU_SOURCE = 3.2
MU_DRAIN = 2.9
KT = 0.025


def _solver(precision):
    H = grid_transport_system(n_x=N_X, n_yz=N_YZ, barrier=BARRIER)
    return RGFSolver(
        H, eta=ETA, sigma_cache=SelfEnergyCache(maxsize=4096),
        precision=precision,
    )


def _sweep(precision):
    """Warm-cache best-of-N batched sweep at one precision."""
    solver = _solver(precision)
    energies = [float(e) for e in np.linspace(E_MIN, E_MAX, N_ENERGY)]
    registry = MetricsRegistry()
    with use_metrics(registry):
        results = solver.solve_batch(energies)  # warm the sigma cache
        best = float("inf")
        for _ in range(BEST_OF):
            t0 = time.perf_counter()
            results = solver.solve_batch(energies)
            best = min(best, time.perf_counter() - t0)
    t = np.array([float(r.transmission) for r in results])
    return t, best, registry.snapshot().flat()


def _speedup_report():
    t64, wall64, _ = _sweep("fp64")
    tmx, wallmx, flat = _sweep("mixed")
    grid = uniform_grid(E_MIN, E_MAX, N_ENERGY)
    i64 = landauer_current(grid, t64, MU_SOURCE, MU_DRAIN, KT)
    imx = landauer_current(grid, tmx, MU_SOURCE, MU_DRAIN, KT)
    rel = abs(imx - i64) / abs(i64)
    return {
        "sweep.n_energy": N_ENERGY,
        "sweep.n_blocks": N_X,
        "sweep.block_size": N_YZ * N_YZ,
        "sweep.rel_current_error": float(rel),
        "sweep.max_t_error": float(np.max(np.abs(tmx - t64))),
        "sweep.points_certified": flat.get(
            "precision.points_certified", 0.0),
        "sweep.fp64_escalations": flat.get(
            "precision.fp64_escalations", 0.0),
        "sweep.refine_iterations_mean": flat.get(
            "precision.refine_iterations.mean", 0.0),
        "sweep.refine_iterations_count": flat.get(
            "precision.refine_iterations.count", 0.0),
        "time.fp64_sweep_s": wall64,
        "time.mixed_sweep_s": wallmx,
        "speedup": wall64 / wallmx,
    }


# ---------------------------------------------------------------------
def _mini_built():
    spec = DeviceSpec(
        name="bench-precision-mini", n_x=10, n_y=2, n_z=2,
        spacing_nm=0.25, source_cells=3, drain_cells=3, gate_cells=(4, 6),
        donor_density_nm3=0.05, material_params={"m_rel": 0.3},
    )
    return build_device(spec)


def _escalation_report():
    """Forced stalls must match FP64 bitwise on all four backends."""
    built = _mini_built()
    pot = np.zeros(built.n_atoms)
    ref_calc = TransportCalculation(
        built, method="rgf", n_energy=13, backend="serial",
        batch_energies=False,
    )
    grid = ref_calc.energy_grid(pot, 0.1)
    ref = ref_calc.solve_bias(pot, 0.1, energy_grid=grid)
    faults = (float(grid.energies[3]), float(grid.energies[8]))
    backends = [
        ("serial", None, False),
        ("thread", 2, False),
        ("process", 2, False),
        ("process", 2, True),
    ]
    checked = 0
    for backend, workers, zc in backends:
        calc = TransportCalculation(
            built, method="rgf", n_energy=13, backend=backend,
            workers=workers, batch_energies=False, zero_copy=zc,
            precision="mixed", refine_faults=faults,
        )
        registry = MetricsRegistry()
        with use_metrics(registry):
            res = calc.solve_bias(pot, 0.1, energy_grid=grid)
        snap = registry.snapshot()
        label = f"{backend}+zc" if zc else backend
        for i in (3, 8):
            assert np.array_equal(
                ref.transmission[:, i], res.transmission[:, i]
            ), (label, i)
        assert snap.total("precision.fp64_escalations") == len(faults), label
        assert snap.total("precision.injected_stalls") == len(faults), label
        checked += 1
    return {
        "escalation.backends_bit_identical": checked,
        "escalation.injected_per_backend": len(faults),
    }


def _plan_bytes(built, pot, precision):
    calc = TransportCalculation(
        built, method="rgf", n_energy=13, backend="process", workers=2,
        batch_energies=True, zero_copy=True, precision=precision,
    )
    registry = MetricsRegistry()
    with use_metrics(registry):
        calc.solve_bias(pot, 0.1)
    flat = registry.snapshot().flat()
    return flat.get("ipc.plan_bytes{kind=transport}.mean", 0.0)


def _plan_report():
    built = _mini_built()
    pot = np.zeros(built.n_atoms)
    out = {
        f"plan_bytes.{p}": _plan_bytes(built, pot, p)
        for p in ("fp64", "mixed", "fp32")
    }
    out["plan_bytes.fp32_ratio"] = (
        out["plan_bytes.fp32"] / out["plan_bytes.fp64"]
    )
    return out


def _full_report():
    report = _speedup_report()
    report.update(_escalation_report())
    report.update(_plan_report())
    assert report["sweep.rel_current_error"] <= MAX_REL_CURRENT, report
    assert report["speedup"] >= MIN_SPEEDUP, report
    assert report["plan_bytes.fp32_ratio"] <= MAX_PLAN_RATIO, report
    return report


def test_t8_escalation_bit_identity():
    """Forced refinement stalls must equal pure FP64 on every backend."""
    report = _escalation_report()
    assert report["escalation.backends_bit_identical"] == 4


def _smoke():
    report = _full_report()
    path = record_baseline("precision", report)
    print_experiment(
        "T8/precision",
        f"mixed sweep {report['speedup']:.2f}x over FP64 at "
        f"{report['sweep.rel_current_error']:.1e} relative current error "
        f"({int(report['sweep.points_certified'])} certified, "
        f"{int(report['sweep.fp64_escalations'])} escalated); "
        f"escalation bit-identical on "
        f"{report['escalation.backends_bit_identical']} backends; "
        f"fp32 plan ships {report['plan_bytes.fp32_ratio']:.2f} of the "
        f"FP64 plan bytes",
        notes=f"baseline -> {path}",
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="measure the mixed-precision speedup and write "
             "BENCH_precision.json",
    )
    args = parser.parse_args()
    if args.smoke:
        _smoke()
    else:
        parser.error("run under pytest for the assertion-only check, "
                     "or pass --smoke")
