"""F3 — strong scaling: fixed problem, growing core counts.

Regenerated at two scales (DESIGN.md substitution):

* modelled: the paper-scale UTB campaign on the simulated Cray XT5, 1k to
  221k cores — walltime, speedup and parallel efficiency from counted
  flops + the real decomposition arithmetic + the communication model;
* measured: the energy level of the decomposition executed for real — the
  per-energy tasks of a transport sweep are timed individually, then the
  decomposition's block-cyclic makespan gives the measured speedup curve a
  real MPI run would see (perfect-network limit).
"""

import numpy as np
from conftest import print_experiment, record_baseline

from repro.io import format_si, format_table
from repro.observability import Tracer, flat_metrics, use_tracer
from repro.parallel import Decomposition, run_tasks
from repro.perf import JAGUAR_XT5, TransportWorkload, strong_scaling
from repro.wf import WFSolver


def paper_workload():
    return TransportWorkload(
        n_slabs=130, block_size=4000, n_bias=15, n_k=21, n_energy=702,
        n_channels=30, algorithm="wf", n_scf_iterations=3,
    )


def test_f3_modelled_strong_scaling(benchmark):
    ranks = [1024, 4096, 16384, 65536, 131072, 221130]
    reports = benchmark.pedantic(
        lambda: strong_scaling(paper_workload(), JAGUAR_XT5, ranks),
        rounds=1, iterations=1,
    )
    base = reports[0]
    rows = []
    for r in reports:
        speedup = base.walltime_s / r.walltime_s
        ideal = r.n_ranks / base.n_ranks
        rows.append((
            r.n_ranks, "x".join(map(str, r.groups)),
            f"{r.walltime_s / 3600:.2f}",
            f"{speedup:.0f}", f"{speedup / ideal * 100:.0f}%",
            format_si(r.sustained_flops, "Flop/s"),
        ))
    print_experiment(
        "F3a",
        "modelled strong scaling, paper-scale UTB on Cray XT5",
        "paper shape: near-ideal scaling through the outer levels, "
        "saturating at full machine",
    )
    print(format_table(
        ["cores", "groups", "walltime (h)", "speedup vs 1k",
         "efficiency", "sustained"],
        rows,
    ))
    times = [r.walltime_s for r in reports]
    assert all(t1 > t2 for t1, t2 in zip(times[:-1], times[1:]))
    # >= 50% parallel efficiency at full machine (paper: ~60%)
    full = reports[-1]
    eff = (base.walltime_s / full.walltime_s) / (full.n_ranks / base.n_ranks)
    assert eff > 0.5


def test_f3_measured_energy_level(benchmark, fet_small, fet_transport):
    """Time real per-energy tasks; replay the decomposition's makespan."""
    H = fet_transport.hamiltonian(np.zeros(fet_small.n_atoms))
    solver = WFSolver(H)
    grid = fet_transport.energy_grid(np.zeros(fet_small.n_atoms), 0.1)
    energies = grid.energies[:48]

    def run():
        with use_tracer(Tracer()) as tracer:
            rep = run_tasks(list(energies), lambda e: solver.solve(float(e)))
        return rep, tracer

    report, tracer = benchmark.pedantic(run, rounds=1, iterations=1)
    total = report.wall_times.sum()
    rows = []
    for p in (1, 2, 4, 8, 16):
        d = Decomposition(
            n_bias=1, n_k=1, n_energy=len(energies), groups=(1, 1, p, 1)
        )
        # block-cyclic assignment replay with the measured task times
        makespans = []
        for rank in range(p):
            tasks = d.tasks_of_rank(rank)
            makespans.append(
                sum(report.wall_times[t.energy_index] for t in tasks)
            )
        t_par = max(makespans)
        rows.append((
            p, f"{total / t_par:.2f}", f"{total / (p * t_par) * 100:.0f}%"
        ))
    print_experiment(
        "F3b",
        "measured energy-level strong scaling (replayed decomposition)",
        f"{len(energies)} real WF solves, mean "
        f"{report.mean_task_time * 1e3:.1f} ms/task",
    )
    print(format_table(["ranks", "speedup", "efficiency"], rows))
    metrics = flat_metrics(tracer)
    metrics["speedup_8_ranks"] = float(rows[3][1])
    path = record_baseline("f3_energy_level", metrics)
    print(f"baseline -> {path.name}")
    # energy level must scale near-ideally to 8 ranks for 48 tasks
    eff8 = float(rows[3][2][:-1])
    assert eff8 > 75.0
