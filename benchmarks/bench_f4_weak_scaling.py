"""F4 — weak scaling: problem grown with the machine.

The paper's weak-scaling story: growing the energy grid (or the bias sweep)
proportionally to the core count keeps the walltime flat, because the outer
levels of the decomposition are embarrassingly parallel.  Regenerated with
the performance model along two growth axes.
"""

from conftest import print_experiment

from repro.io import format_si, format_table
from repro.perf import JAGUAR_XT5, TransportWorkload, weak_scaling


def base_workload():
    return TransportWorkload(
        n_slabs=130, block_size=4000, n_bias=1, n_k=21, n_energy=64,
        n_channels=30, algorithm="wf", n_scf_iterations=1,
    )


def test_f4_weak_scaling_energy(benchmark):
    ranks = [1344, 2688, 5376, 10752, 21504]
    reports = benchmark.pedantic(
        lambda: weak_scaling(base_workload(), JAGUAR_XT5, ranks,
                             grow="n_energy"),
        rounds=1, iterations=1,
    )
    t0 = reports[0].walltime_s
    rows = [
        (
            r.n_ranks, "x".join(map(str, r.groups)),
            f"{r.walltime_s:.0f}", f"{t0 / r.walltime_s * 100:.0f}%",
            format_si(r.sustained_flops, "Flop/s"),
        )
        for r in reports
    ]
    print_experiment(
        "F4",
        "modelled weak scaling (energy grid grown with cores)",
        "paper shape: flat walltime, sustained Flop/s grows linearly",
    )
    print(format_table(
        ["cores", "groups", "walltime (s)", "weak efficiency", "sustained"],
        rows,
    ))
    for r in reports[1:]:
        assert r.walltime_s < 1.3 * t0  # flat to within 30%
    assert (
        reports[-1].sustained_flops
        > 0.6 * reports[0].sustained_flops * ranks[-1] / ranks[0]
    )


def test_f4_weak_scaling_bias(benchmark):
    ranks = [1344, 2688, 5376, 10752]
    base = TransportWorkload(
        n_slabs=130, block_size=4000, n_bias=1, n_k=21, n_energy=64,
        n_channels=30, algorithm="wf",
    )
    reports = benchmark.pedantic(
        lambda: weak_scaling(base, JAGUAR_XT5, ranks, grow="n_bias"),
        rounds=1, iterations=1,
    )
    t0 = reports[0].walltime_s
    rows = [
        (r.n_ranks, "x".join(map(str, r.groups)), f"{r.walltime_s:.0f}",
         f"{t0 / r.walltime_s * 100:.0f}%")
        for r in reports
    ]
    print_experiment(
        "F4b",
        "modelled weak scaling (bias sweep grown with cores)",
        "the bias level is perfectly parallel: efficiency ~100%",
    )
    print(format_table(["cores", "groups", "walltime (s)", "efficiency"], rows))
    for r in reports[1:]:
        assert r.walltime_s < 1.15 * t0
