"""A1 — ablations of the design choices called out in DESIGN.md section 5.

Three ablation studies, each a measured comparison of two interchangeable
implementations:

* **surface self-energy**: Sancho-Rubio decimation vs the complex-band
  eigenmethod — agreement, wall time, robustness near band edges;
* **energy integration**: uniform vs adaptive-refinement grid on a
  resonant (double-barrier) structure — current accuracy per solver call;
* **alloy treatment**: virtual crystal vs random-alloy supercell — the
  disorder backscattering the VCA cannot capture.
"""

import time

import numpy as np
from conftest import print_experiment

from repro.io import format_table
from repro.lattice import ZincblendeCell, partition_into_slabs, zincblende_nanowire
from repro.negf import RGFSolver, contact_self_energy
from repro.physics.grids import AdaptiveEnergyGrid, uniform_grid
from repro.tb import (
    BlockTridiagonalHamiltonian,
    alloy_interior_mask,
    alloy_material,
    build_device_hamiltonian,
    germanium_sp3s,
    randomize_species,
    silicon_sp3s,
)
from repro.tb.chain import chain_blocks
from repro.wf import WFSolver

SI = ZincblendeCell(0.5431, "Si", "Si")


def test_a1_surface_method(benchmark):
    """Sancho-Rubio vs eigenmethod: same physics, different cost profile."""
    wire = zincblende_nanowire(SI, 2, 1, 1)
    dev = partition_into_slabs(wire, SI.a_nm, SI.bond_length_nm)
    H = build_device_hamiltonian(dev, silicon_sp3s())
    h00, h01 = H.diagonal[0], H.upper[0]

    def compare():
        rows = []
        for energy in (2.35, 2.6, 3.0):
            t0 = time.perf_counter()
            s_sancho = contact_self_energy(
                energy, h00, h01, side="left", method="sancho"
            )
            t_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            s_eigen = contact_self_energy(
                energy, h00, h01, side="left", method="eigen"
            )
            t_e = time.perf_counter() - t0
            diff = np.abs(s_sancho.sigma - s_eigen.sigma).max()
            rows.append((
                f"{energy:.2f}", f"{t_s * 1e3:.1f}", f"{t_e * 1e3:.1f}",
                f"{diff:.1e}", s_sancho.n_open_channels(),
            ))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_experiment(
        "A1a",
        "surface self-energy: Sancho-Rubio vs complex-band eigenmethod",
        "30-orbital Si wire lead; both methods must agree",
    )
    print(format_table(
        ["E (eV)", "Sancho (ms)", "eigen (ms)", "max |dSigma|", "channels"],
        rows,
    ))
    assert all(float(r[3]) < 1e-3 for r in rows)


def test_a1_energy_grid(benchmark):
    """Uniform vs adaptive grid on a sharp double-barrier resonance."""
    n = 41
    pot = np.zeros(n)
    pot[10] = pot[30] = 2.0  # high thin barriers -> narrow resonances
    diag, up = chain_blocks(n, 0.0, 1.0, pot)
    H = BlockTridiagonalHamiltonian(diag, up)
    solver = RGFSolver(H, eta=1e-12)
    emin, emax = -1.99, -1.5

    def transmission(e):
        return solver.transmission(float(e))

    def study():
        # dense reference
        ref_grid = uniform_grid(emin, emax, 4001)
        ref_T = np.array([transmission(e) for e in ref_grid.energies])
        reference = float(ref_grid.integrate(ref_T))
        rows = []
        for n_pts in (33, 65, 129):
            g = uniform_grid(emin, emax, n_pts)
            val = float(g.integrate(np.array([transmission(e) for e in g.energies])))
            rows.append((f"uniform-{n_pts}", n_pts,
                         f"{abs(val - reference) / reference * 100:.2f}%"))
        adaptive = AdaptiveEnergyGrid(emin, emax, n_initial=17, tol=1e-3)
        grid = adaptive.refine(transmission, max_passes=14)
        vals = adaptive.sampled_values(grid)
        val = float(grid.integrate(vals))
        n_solves = len(adaptive.samples)
        rows.append((f"adaptive (tol 1e-3)", n_solves,
                     f"{abs(val - reference) / reference * 100:.2f}%"))
        return rows

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    print_experiment(
        "A1b",
        "energy integration of a double-barrier resonance: uniform vs "
        "adaptive refinement",
        "integral of T(E); error vs a 4001-point reference",
    )
    print(format_table(["grid", "solver calls", "integral error"], rows))
    errs = [float(r[2][:-1]) for r in rows]
    calls = [r[1] for r in rows]
    # adaptive beats the uniform grid of comparable (or larger) cost
    comparable = [e for e, c in zip(errs[:-1], calls[:-1]) if c >= calls[-1]]
    assert errs[-1] <= min(comparable + [errs[0]])


def test_a1_alloy_treatment(benchmark):
    """VCA vs random alloy: the VCA misses disorder backscattering."""
    si, ge = silicon_sp3s(), germanium_sp3s()
    am = alloy_material(si, ge)
    wire = zincblende_nanowire(SI, 7, 1, 1)
    dev = partition_into_slabs(wire, SI.a_nm, SI.bond_length_nm)
    mask = alloy_interior_mask(dev, n_lead_slabs=2)
    energy = 2.5

    def study():
        t_pure = WFSolver(build_device_hamiltonian(dev, am)).transmission(energy)
        rng = np.random.default_rng(11)
        t_rand = []
        for _ in range(6):
            dis = randomize_species(dev.structure, "Ge", 0.5, rng, mask)
            dd = partition_into_slabs(dis, SI.a_nm, SI.bond_length_nm)
            t_rand.append(
                WFSolver(build_device_hamiltonian(dd, am)).transmission(energy)
            )
        return t_pure, np.array(t_rand)

    t_pure, t_rand = benchmark.pedantic(study, rounds=1, iterations=1)
    print_experiment(
        "A1c",
        "alloy treatment: translation-invariant wire vs random alloy",
        "VCA-like ordered wire keeps ballistic T; the random alloy "
        "backscatters (thin-wire localisation)",
    )
    print(format_table(
        ["configuration", "T(2.5 eV)"],
        [
            ("ordered (VCA-like)", f"{t_pure:.4f}"),
            ("random alloy <T> +- sigma",
             f"{t_rand.mean():.4f} +- {t_rand.std():.4f}"),
        ],
    ))
    assert t_pure > 1.9
    assert t_rand.mean() < 0.7 * t_pure
    assert t_rand.std() > 0.01  # genuine configuration-to-configuration spread
