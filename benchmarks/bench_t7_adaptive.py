"""T7 — adaptive energy waves: node count vs uniform at matched accuracy.

A double-barrier resonant device funnels essentially all of its current
through one transmission resonance a few 1e-4 eV wide, sitting in a
~0.5 eV Fermi window.  A uniform trapezoid grid must drop its *global*
spacing below the resonance width before the integrated current
converges; the wave-scheduled adaptive mode
(:class:`repro.physics.grids.AdaptiveEnergyGrid` driven by
``TransportCalculation(energy_mode="adaptive")``) bisects toward the
resonance and pays the fine spacing only there.

The benchmark measures both sides against a dense-grid oracle:

* **uniform** — the smallest power-of-two-plus-one uniform grid whose
  integrated current lands within 1e-8 relative of the oracle;
* **adaptive** — energy solves spent by the wave engine to reach the
  same (<= 1e-8 relative) accuracy, plus the wave/node statistics from
  :attr:`TransportResult.adaptive`.

The acceptance bar is a >= 3x node-count reduction at matched accuracy,
with the adaptive result bit-identical across the serial, thread,
process and process+zero-copy backends and the parent-side
``adaptive.*`` counters exactly equal on all of them.

``--smoke`` records the full report as the ``BENCH_adaptive`` measured
baseline.
"""

import time

import numpy as np
from conftest import print_experiment, record_baseline

from repro.core import DeviceSpec, TransportCalculation, build_device
from repro.negf import landauer_current
from repro.observability import MetricsRegistry, Tracer, use_metrics, use_tracer
from repro.physics.grids import uniform_grid

#: Broadening small enough that the resonance width is set by tunneling.
ETA = 5e-5
BIAS_V = 0.05
#: Adaptive configuration: seed = N_ENERGY // 2 nodes, 14 bisection
#: passes so the finest interval (~2e-7 eV) sits well below the
#: resonance width.
N_ENERGY = 1024
TOL = 1e-5
MAX_PASSES = 14
#: Matched-accuracy bar: both quadratures must land within this
#: relative distance of the dense oracle.
REL_TOL = 1e-8
#: Dense oracle size (power of two + 1 so every uniform trial grid is a
#: strict subset of the oracle nodes).
N_ORACLE = 65537
N_UNIFORM_MIN = 2049


def _built():
    spec = DeviceSpec(
        name="bench-adaptive",
        n_x=40,
        n_y=1,
        n_z=1,
        spacing_nm=0.25,
        source_cells=4,
        drain_cells=4,
        gate_cells=(12, 28),
        donor_density_nm3=0.05,
        material_params={"m_rel": 0.3},
    )
    return build_device(spec)


def _potential(built):
    """Two 6-site, 0.7 eV barriers around a 10-site well."""
    pot = np.zeros(built.n_atoms)
    pot[9:15] = 0.7
    pot[25:31] = 0.7
    return pot


def _transport(built, energy_mode="uniform", **kwargs):
    return TransportCalculation(
        built, method="rgf", n_energy=N_ENERGY, eta=ETA,
        energy_mode=energy_mode, adaptive_tol=TOL,
        max_energy_points=16384, adaptive_max_passes=MAX_PASSES,
        **kwargs,
    )


def _uniform_report(built, pot):
    """Dense oracle + the smallest uniform grid within ``REL_TOL`` of it.

    All uniform trials are node subsets of the oracle grid, so one
    batched dense solve prices every candidate: a uniform solve of
    ``n`` nodes integrates the cached transmission on every
    ``(N_ORACLE - 1) / (n - 1)``-th node.
    """
    tc = _transport(built)
    grid = tc.energy_grid(pot, BIAS_V)
    emin = float(grid.energies.min())
    emax = float(grid.energies.max())
    mu_s = built.contact_mu("source")
    mu_d = built.contact_mu("drain", BIAS_V)
    kT = built.spec.kT

    dense = uniform_grid(emin, emax, N_ORACLE)
    solver = tc._make_solver(tc.hamiltonian(pot))
    t0 = time.perf_counter()
    batch = solver.solve_batch([float(e) for e in dense.energies])
    oracle_s = time.perf_counter() - t0
    t_dense = np.array([float(r.transmission) for r in batch])
    current = {}
    n = N_ORACLE
    while n >= N_UNIFORM_MIN:
        step = (N_ORACLE - 1) // (n - 1)
        current[n] = landauer_current(
            uniform_grid(emin, emax, n), t_dense[::step],
            mu_s, mu_d, kT, spin_degeneracy=tc.spin_degeneracy,
        )
        n = (n - 1) // 2 + 1
    i_ref = current[N_ORACLE]
    matched, matched_rel = None, None
    for n in sorted(current):
        rel = abs(current[n] - i_ref) / abs(i_ref)
        if rel <= REL_TOL and n < N_ORACLE:
            matched, matched_rel = n, rel
            break
    assert matched is not None, (
        f"no uniform grid below the oracle reached {REL_TOL:g} relative"
    )
    return {
        "current_ref_a": float(i_ref),
        "uniform.matched_n": int(matched),
        "uniform.rel_error": float(matched_rel),
        "time.dense_oracle_s": oracle_s,
    }


def _adaptive_run(built, pot, backend="serial", workers=None,
                  zero_copy=False):
    tc = _transport(
        built, energy_mode="adaptive", backend=backend, workers=workers,
        sigma_cache=True, zero_copy=zero_copy,
    )
    tracer, registry = Tracer(), MetricsRegistry()
    t0 = time.perf_counter()
    with use_tracer(tracer), use_metrics(registry):
        res = tc.solve_bias(pot, BIAS_V)
    wall = time.perf_counter() - t0
    snap = registry.snapshot()
    counters = {
        k: v for k, v in snap.counters.items() if k.startswith("adaptive.")
    }
    return res, counters, wall


def _adaptive_report(built, pot, i_ref, backends=None):
    """Adaptive solve on every backend: matched accuracy + bit-identity."""
    if backends is None:
        backends = [
            ("serial", None, False),
            ("thread", 2, False),
            ("process", 2, False),
            ("process", 2, True),
        ]
    runs = {}
    for backend, workers, zc in backends:
        label = f"{backend}+zc" if zc else backend
        runs[label] = _adaptive_run(
            built, pot, backend=backend, workers=workers, zero_copy=zc,
        )
    ref_label = next(iter(runs))
    ref, ref_counters, _ = runs[ref_label]
    for label, (res, counters, _) in runs.items():
        np.testing.assert_array_equal(
            res.energy_grid.energies, ref.energy_grid.energies,
            err_msg=f"{label} vs {ref_label}",
        )
        np.testing.assert_array_equal(res.transmission, ref.transmission)
        assert res.current_a == ref.current_a, (label, ref_label)
        assert res.adaptive == ref.adaptive, (label, ref_label)
        assert counters == ref_counters, (label, ref_label)
    stats = ref.adaptive
    rel = abs(ref.current_a - i_ref) / abs(i_ref)
    report = {
        "adaptive.solved": int(stats["solved"]),
        "adaptive.nodes": int(stats["nodes"]),
        "adaptive.waves": int(stats["waves"]),
        "adaptive.est_error": float(stats["est_error"]),
        "adaptive.rel_error": float(rel),
        "adaptive.current_a": float(ref.current_a),
        "adaptive.backends_bit_identical": len(runs),
    }
    for label, (_, _, wall) in runs.items():
        report[f"time.adaptive_{label.replace('+', '_')}_s"] = wall
    return report


def _full_report(built, pot, backends=None):
    report = _uniform_report(built, pot)
    report.update(
        _adaptive_report(
            built, pot, report["current_ref_a"], backends=backends,
        )
    )
    report["reduction"] = (
        report["uniform.matched_n"] / report["adaptive.solved"]
    )
    assert report["adaptive.rel_error"] <= REL_TOL, report
    assert report["reduction"] >= 3.0, report
    return report


def test_t7_adaptive_node_reduction():
    """Adaptive must undercut matched-accuracy uniform by >= 3x solves."""
    built = _built()
    pot = _potential(built)
    report = _full_report(built, pot, backends=[("serial", None, False)])
    assert report["adaptive.backends_bit_identical"] == 1


def _smoke():
    built = _built()
    pot = _potential(built)
    report = _full_report(built, pot)
    path = record_baseline("adaptive", report)
    print_experiment(
        "T7/adaptive",
        f"uniform needs {report['uniform.matched_n']} solves for "
        f"{report['uniform.rel_error']:.1e} relative; adaptive reaches "
        f"{report['adaptive.rel_error']:.1e} with "
        f"{report['adaptive.solved']} solves in "
        f"{report['adaptive.waves']} waves "
        f"({report['reduction']:.1f}x fewer), bit-identical on "
        f"{report['adaptive.backends_bit_identical']} backends",
        notes=f"baseline -> {path}",
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="measure the node-count reduction at matched accuracy and "
             "write BENCH_adaptive.json",
    )
    args = parser.parse_args()
    if args.smoke:
        _smoke()
    else:
        parser.error("run under pytest for the assertion-only check, "
                     "or pass --smoke")
