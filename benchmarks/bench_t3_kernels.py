"""T3 — kernel cost breakdown: measured time + counted flops per kernel.

Regenerates the per-kernel cost table: every computational kernel of the
transport pipeline timed by pytest-benchmark on a fixed mid-size system,
with its analytic flop count and the implied per-kernel MFlop/s.  This is
the table that grounds the performance model's constants.
"""

import time

import numpy as np
import pytest
from conftest import grid_transport_system, print_experiment, record_baseline

from repro.negf import RGFSolver, contact_self_energy, sancho_rubio
from repro.negf.rgf import assemble_system_blocks
from repro.negf.surface_gf import sancho_rubio_batch
from repro.observability import Tracer, flat_metrics, use_tracer
from repro.perf import (
    block_lu_factor_flops,
    rgf_solve_flops,
    sancho_rubio_flops,
    wf_solve_flops,
)
from repro.solvers import BandedLU, BlockTridiagLU, SplitSolve
from repro.wf import WFSolver

ENERGY = 0.6


@pytest.fixture(scope="module")
def system():
    H = grid_transport_system(n_x=16, n_yz=8)
    sig_l = contact_self_energy(ENERGY, H.diagonal[0], H.upper[0], side="left")
    sig_r = contact_self_energy(
        ENERGY, H.diagonal[-1], H.upper[-1], side="right"
    )
    blocks = assemble_system_blocks(H, ENERGY, sig_l.sigma, sig_r.sigma)
    return H, sig_l, sig_r, blocks


def test_t3_surface_gf(benchmark, system):
    H, _, _, _ = system
    h00, h01 = H.diagonal[0], H.upper[0]
    g, iters = benchmark(lambda: sancho_rubio(ENERGY, h00, h01))
    m = h00.shape[0]
    flops = sancho_rubio_flops(m, iters)
    print_experiment(
        "T3/surface_gf",
        f"Sancho-Rubio m={m}: {iters} iterations, "
        f"{flops / 1e6:.1f} MFlop counted",
    )
    assert iters < 60


def test_t3_block_lu_factor(benchmark, system):
    _, _, _, blocks = system
    diag, upper, lower = blocks
    lu = benchmark(lambda: BlockTridiagLU(diag, upper, lower))
    m = diag[0].shape[0]
    flops = block_lu_factor_flops(len(diag), m)
    print_experiment(
        "T3/block_lu",
        f"block LU factor N={len(diag)}, m={m}: {flops / 1e6:.1f} MFlop",
    )
    assert lu.n_blocks == len(diag)


def test_t3_rgf_full_solve(benchmark, system):
    _, _, _, blocks = system
    diag, upper, lower = blocks

    def rgf():
        lu = BlockTridiagLU(diag, upper, lower)
        lu.solve_block_column(0)
        lu.solve_block_column(len(diag) - 1)
        lu.diagonal_of_inverse()

    benchmark(rgf)
    flops = rgf_solve_flops(len(diag), diag[0].shape[0])
    print_experiment(
        "T3/rgf", f"full RGF pass: {flops / 1e6:.1f} MFlop counted"
    )


def test_t3_wf_solve(benchmark, system):
    H, sig_l, sig_r, _ = system
    wf = WFSolver(H, injection_tol_ev=1e-4)

    def solve():
        lu = wf._factor(ENERGY, sig_l, sig_r)
        return wf._scattering_states(lu, sig_l, 0)

    psi = benchmark(solve)
    n_rhs = psi.shape[1]
    flops = wf_solve_flops(H.n_blocks, int(H.block_sizes.max()), n_rhs)
    print_experiment(
        "T3/wf",
        f"WF factor + {n_rhs} channel solves: {flops / 1e6:.1f} MFlop",
    )
    assert n_rhs < H.block_sizes.max()


def test_t3_measured_flop_crosscheck(system):
    """Instrumented counts equal the analytic T3 formulas, exactly.

    The same RGF pass as :func:`test_t3_rgf_full_solve`, executed under a
    live tracer: the flops the instrumented block-LU actually reports must
    match :func:`repro.perf.rgf_solve_flops` to the last flop.  The traced
    metrics are recorded as the ``BENCH_t3_rgf`` measured baseline.
    """
    _, _, _, blocks = system
    diag, upper, lower = blocks
    tracer = Tracer()
    with use_tracer(tracer):
        lu = BlockTridiagLU(diag, upper, lower)
        lu.solve_block_column(0)
        lu.solve_block_column(len(diag) - 1)
        lu.diagonal_of_inverse()
    measured = tracer.total_flops
    analytic = rgf_solve_flops(len(diag), diag[0].shape[0])
    assert measured == analytic
    path = record_baseline("t3_rgf", flat_metrics(tracer))
    print_experiment(
        "T3/crosscheck",
        f"measured {measured / 1e6:.1f} MFlop == analytic "
        f"{analytic / 1e6:.1f} MFlop; baseline -> {path.name}",
    )


def test_t3_banded_lu(benchmark, system):
    _, _, _, blocks = system
    diag, upper, lower = blocks
    n = sum(d.shape[0] for d in diag)
    rhs = np.ones((n, 4), dtype=complex)

    def banded():
        return BandedLU(diag, upper, lower).solve(rhs)

    x = benchmark(banded)
    assert x.shape == (n, 4)


def test_t3_splitsolve(benchmark, system):
    _, _, _, blocks = system
    diag, upper, lower = blocks
    rhs = [np.ones((d.shape[0], 4), dtype=complex) for d in diag]

    def split():
        return SplitSolve(diag, upper, lower, n_domains=4).solve(rhs)

    x = benchmark(split)
    assert len(x) == len(diag)


# ---------------------------------------------------------------------------
# batched energy-point execution: stacked numpy.linalg vs per-point loops
# ---------------------------------------------------------------------------
#
# The batched path wins when blocks are small enough that the per-point
# Python/LAPACK dispatch overhead dominates — exactly the regime of the
# energy loop in a bias sweep (many energies, modest block size).

def _batched_system(n_x=24, n_yz=2, n_energies=64):
    H = grid_transport_system(n_x=n_x, n_yz=n_yz)
    ev = np.linalg.eigvalsh(H.diagonal[0])
    width = 2.0 * np.linalg.norm(H.upper[0], 2)
    lo, hi = ev.min() - width, ev.max() + width
    w = hi - lo
    energies = np.linspace(lo + 0.137 * w, hi - 0.171 * w, n_energies)
    return H, energies


def _best_of(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_t3_batched_rgf(benchmark):
    H, energies = _batched_system()
    solver = RGFSolver(H)
    results = benchmark(lambda: solver.solve_batch(energies))
    m = int(H.block_sizes.max())
    flops = len(energies) * rgf_solve_flops(H.n_blocks, m)
    print_experiment(
        "T3/rgf_batched",
        f"batched RGF: {len(energies)} energies, N={H.n_blocks}, m={m}: "
        f"{flops / 1e6:.1f} MFlop counted",
    )
    assert len(results) == len(energies)


def test_t3_batched_wf(benchmark):
    H, energies = _batched_system()
    solver = WFSolver(H)
    results = benchmark(lambda: solver.solve_batch(energies))
    print_experiment(
        "T3/wf_batched",
        f"batched WF: {len(energies)} energies, N={H.n_blocks}",
    )
    assert len(results) == len(energies)


def test_t3_batched_surface_gf(benchmark):
    H, energies = _batched_system()
    h00, h01 = H.diagonal[0], H.upper[0]
    g, iters = benchmark(lambda: sancho_rubio_batch(energies, h00, h01))
    assert g.shape == (len(energies), h00.shape[0], h00.shape[0])
    print_experiment(
        "T3/surface_gf_batched",
        f"batched Sancho-Rubio: {len(energies)} energies, "
        f"{int(iters.max())} max iterations",
    )


def _measure_batched_speedups(n_energies=64, repeats=3):
    """Wall-time comparison, per-point loop vs batched, for each kernel."""
    H, energies = _batched_system(n_energies=n_energies)
    h00, h01 = H.diagonal[0], H.upper[0]
    m = int(H.block_sizes.max())
    report = {
        "n_blocks": int(H.n_blocks),
        "block_size": m,
        "n_energies": int(len(energies)),
    }

    kernels = {
        "surface_gf": (
            lambda: [sancho_rubio(float(e), h00, h01) for e in energies],
            lambda: sancho_rubio_batch(energies, h00, h01),
        ),
        "rgf": (
            lambda: [RGFSolver(H).solve(float(e)) for e in energies],
            lambda: RGFSolver(H).solve_batch(energies),
        ),
        "wf": (
            lambda: [WFSolver(H).solve(float(e)) for e in energies],
            lambda: WFSolver(H).solve_batch(energies),
        ),
    }
    for name, (per_point, batched) in kernels.items():
        t_pp = _best_of(per_point, repeats)
        t_b = _best_of(batched, repeats)
        report[f"{name}.per_point_s"] = t_pp
        report[f"{name}.batched_s"] = t_b
        report[f"{name}.speedup"] = t_pp / t_b
    return report


def test_t3_batched_speedup_sane():
    """Batching a small-block workload must never be slower than the loop."""
    report = _measure_batched_speedups(n_energies=32, repeats=2)
    for name in ("surface_gf", "rgf", "wf"):
        assert report[f"{name}.speedup"] > 1.0, report


def _smoke():
    report = _measure_batched_speedups()
    path = record_baseline("kernels", report)
    rows = "\n".join(
        f"  {name:<12} per-point {report[f'{name}.per_point_s'] * 1e3:8.1f} ms"
        f"  batched {report[f'{name}.batched_s'] * 1e3:8.1f} ms"
        f"  speedup {report[f'{name}.speedup']:5.2f}x"
        for name in ("surface_gf", "rgf", "wf")
    )
    print_experiment(
        "T3/batched",
        f"batched vs per-point, {report['n_energies']} energies, "
        f"N={report['n_blocks']}, m={report['block_size']}:\n{rows}",
        notes=f"baseline -> {path}",
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="measure batched-vs-per-point speedups and write "
             "BENCH_kernels.json",
    )
    args = parser.parse_args()
    if args.smoke:
        _smoke()
    else:
        parser.error("run under pytest for the full benchmark suite, "
                     "or pass --smoke")
