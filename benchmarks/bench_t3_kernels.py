"""T3 — kernel cost breakdown: measured time + counted flops per kernel.

Regenerates the per-kernel cost table: every computational kernel of the
transport pipeline timed by pytest-benchmark on a fixed mid-size system,
with its analytic flop count and the implied per-kernel MFlop/s.  This is
the table that grounds the performance model's constants.
"""

import numpy as np
import pytest
from conftest import grid_transport_system, print_experiment, record_baseline

from repro.negf import contact_self_energy, sancho_rubio
from repro.negf.rgf import assemble_system_blocks
from repro.observability import Tracer, flat_metrics, use_tracer
from repro.perf import (
    block_lu_factor_flops,
    rgf_solve_flops,
    sancho_rubio_flops,
    wf_solve_flops,
)
from repro.solvers import BandedLU, BlockTridiagLU, SplitSolve
from repro.wf import WFSolver

ENERGY = 0.6


@pytest.fixture(scope="module")
def system():
    H = grid_transport_system(n_x=16, n_yz=8)
    sig_l = contact_self_energy(ENERGY, H.diagonal[0], H.upper[0], side="left")
    sig_r = contact_self_energy(
        ENERGY, H.diagonal[-1], H.upper[-1], side="right"
    )
    blocks = assemble_system_blocks(H, ENERGY, sig_l.sigma, sig_r.sigma)
    return H, sig_l, sig_r, blocks


def test_t3_surface_gf(benchmark, system):
    H, _, _, _ = system
    h00, h01 = H.diagonal[0], H.upper[0]
    g, iters = benchmark(lambda: sancho_rubio(ENERGY, h00, h01))
    m = h00.shape[0]
    flops = sancho_rubio_flops(m, iters)
    print_experiment(
        "T3/surface_gf",
        f"Sancho-Rubio m={m}: {iters} iterations, "
        f"{flops / 1e6:.1f} MFlop counted",
    )
    assert iters < 60


def test_t3_block_lu_factor(benchmark, system):
    _, _, _, blocks = system
    diag, upper, lower = blocks
    lu = benchmark(lambda: BlockTridiagLU(diag, upper, lower))
    m = diag[0].shape[0]
    flops = block_lu_factor_flops(len(diag), m)
    print_experiment(
        "T3/block_lu",
        f"block LU factor N={len(diag)}, m={m}: {flops / 1e6:.1f} MFlop",
    )
    assert lu.n_blocks == len(diag)


def test_t3_rgf_full_solve(benchmark, system):
    _, _, _, blocks = system
    diag, upper, lower = blocks

    def rgf():
        lu = BlockTridiagLU(diag, upper, lower)
        lu.solve_block_column(0)
        lu.solve_block_column(len(diag) - 1)
        lu.diagonal_of_inverse()

    benchmark(rgf)
    flops = rgf_solve_flops(len(diag), diag[0].shape[0])
    print_experiment(
        "T3/rgf", f"full RGF pass: {flops / 1e6:.1f} MFlop counted"
    )


def test_t3_wf_solve(benchmark, system):
    H, sig_l, sig_r, _ = system
    wf = WFSolver(H, injection_tol_ev=1e-4)

    def solve():
        lu = wf._factor(ENERGY, sig_l, sig_r)
        return wf._scattering_states(lu, sig_l, 0)

    psi = benchmark(solve)
    n_rhs = psi.shape[1]
    flops = wf_solve_flops(H.n_blocks, int(H.block_sizes.max()), n_rhs)
    print_experiment(
        "T3/wf",
        f"WF factor + {n_rhs} channel solves: {flops / 1e6:.1f} MFlop",
    )
    assert n_rhs < H.block_sizes.max()


def test_t3_measured_flop_crosscheck(system):
    """Instrumented counts equal the analytic T3 formulas, exactly.

    The same RGF pass as :func:`test_t3_rgf_full_solve`, executed under a
    live tracer: the flops the instrumented block-LU actually reports must
    match :func:`repro.perf.rgf_solve_flops` to the last flop.  The traced
    metrics are recorded as the ``BENCH_t3_rgf`` measured baseline.
    """
    _, _, _, blocks = system
    diag, upper, lower = blocks
    tracer = Tracer()
    with use_tracer(tracer):
        lu = BlockTridiagLU(diag, upper, lower)
        lu.solve_block_column(0)
        lu.solve_block_column(len(diag) - 1)
        lu.diagonal_of_inverse()
    measured = tracer.total_flops
    analytic = rgf_solve_flops(len(diag), diag[0].shape[0])
    assert measured == analytic
    path = record_baseline("t3_rgf", flat_metrics(tracer))
    print_experiment(
        "T3/crosscheck",
        f"measured {measured / 1e6:.1f} MFlop == analytic "
        f"{analytic / 1e6:.1f} MFlop; baseline -> {path.name}",
    )


def test_t3_banded_lu(benchmark, system):
    _, _, _, blocks = system
    diag, upper, lower = blocks
    n = sum(d.shape[0] for d in diag)
    rhs = np.ones((n, 4), dtype=complex)

    def banded():
        return BandedLU(diag, upper, lower).solve(rhs)

    x = benchmark(banded)
    assert x.shape == (n, 4)


def test_t3_splitsolve(benchmark, system):
    _, _, _, blocks = system
    diag, upper, lower = blocks
    rhs = [np.ones((d.shape[0], 4), dtype=complex) for d in diag]

    def split():
        return SplitSolve(diag, upper, lower, n_domains=4).solve(rhs)

    x = benchmark(split)
    assert len(x) == len(diag)
