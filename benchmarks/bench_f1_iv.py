"""F1 — transfer/output characteristics of the self-consistent nanowire FET.

Regenerates the paper's device-result figure class: ballistic Id-Vg and
Id-Vd of a gate-all-around nanowire transistor from the fully
self-consistent Poisson + wave-function-transport loop, plus the
engineering figures of merit.  The reproduction targets are qualitative
shape facts: exponential subthreshold with swing >= the 59.6 mV/dec
thermionic limit, on/off > 1e3 over half a volt of gate swing, and a
saturating output characteristic.
"""

import numpy as np
from conftest import print_experiment

from repro.core import IVSweep, SelfConsistentSolver, subthreshold_swing_mv_dec
from repro.io import format_si, format_table


def test_f1_transfer_characteristic(benchmark, fet_small, fet_transport):
    scf = SelfConsistentSolver(fet_small, fet_transport)
    sweep = IVSweep(scf)
    v_gates = np.linspace(-0.45, 0.1, 7)

    curve = benchmark.pedantic(
        lambda: sweep.transfer_curve(v_gates, v_drain=0.05),
        rounds=1, iterations=1,
    )
    rows = [
        (f"{p.v_gate:+.3f}", format_si(p.current_a, "A"),
         "yes" if p.converged else "NO", p.n_iterations)
        for p in curve.points
    ]
    ss = subthreshold_swing_mv_dec(
        curve.gate_voltages()[:4], curve.currents()[:4]
    )
    print_experiment(
        "F1a",
        "Id-Vg transfer characteristic (V_D = 50 mV)",
        f"subthreshold swing {ss:.1f} mV/dec (thermionic limit 59.6); "
        f"on/off = {curve.on_off_ratio():.2e}",
    )
    print(format_table(["V_G (V)", "I_D", "converged", "iters"], rows))

    i = curve.currents()
    assert np.all(np.diff(i) > 0)
    assert curve.on_off_ratio() > 1e3
    assert ss > 55.0
    assert all(p.converged for p in curve.points)


def test_f1_output_characteristic(benchmark, fet_small, fet_transport):
    scf = SelfConsistentSolver(fet_small, fet_transport)
    sweep = IVSweep(scf)
    v_drains = np.array([0.02, 0.1, 0.2, 0.3])

    curve = benchmark.pedantic(
        lambda: sweep.output_curve(v_gate=0.0, drain_voltages=v_drains),
        rounds=1, iterations=1,
    )
    rows = [
        (f"{p.v_drain:.2f}", format_si(p.current_a, "A"),
         "yes" if p.converged else "NO")
        for p in curve.points
    ]
    i = curve.currents()
    g_first = (i[1] - i[0]) / (v_drains[1] - v_drains[0])
    g_last = (i[-1] - i[-2]) / (v_drains[-1] - v_drains[-2])
    print_experiment(
        "F1b",
        "Id-Vd output characteristic (V_G = 0 V)",
        f"output conductance collapse: g_d(sat)/g_d(lin) = "
        f"{g_last / g_first:.3f} (ballistic saturation)",
    )
    print(format_table(["V_D (V)", "I_D", "converged"], rows))

    assert np.all(np.diff(i) > -0.02 * i.max())
    assert g_last < 0.5 * g_first
    assert all(p.converged for p in curve.points)
