"""T1 — device benchmark table: structures, atom counts, Hamiltonian sizes.

Regenerates the paper's device-inventory table: for each benchmark
structure, the geometry family, atom count, orbitals per atom, Hamiltonian
dimension and slab block size.  Small devices are *built* (geometry layer
executed for real); the two paper-scale devices are constructed
analytically from the same per-cell counts and marked "projected".
"""

from conftest import print_experiment

from repro.io import format_table
from repro.lattice import (
    ZincblendeCell,
    partition_into_slabs,
    zincblende_nanowire,
    zincblende_ultra_thin_body,
)
from repro.tb import silicon_sp3d5s, silicon_sp3s

SI = ZincblendeCell(0.5431, "Si", "Si")


def build_rows():
    rows = []
    # --- built devices ------------------------------------------------------
    cases = [
        ("Si NW 1.1nm, sp3s*", "nanowire", 8, 2, 2, silicon_sp3s()),
        ("Si NW 1.6nm, sp3s*", "nanowire", 8, 3, 3, silicon_sp3s()),
        ("Si NW 1.1nm, sp3d5s*+SO", "nanowire", 6, 2, 2,
         silicon_sp3d5s().with_spin()),
        ("Si UTB 1.1nm, sp3s*", "utb", 8, None, 2, silicon_sp3s()),
    ]
    for name, family, nx, ny, nz, mat in cases:
        if family == "nanowire":
            s = zincblende_nanowire(SI, nx, ny, nz)
        else:
            s = zincblende_ultra_thin_body(SI, nx, nz)
        dev = partition_into_slabs(s, mat.slab_length_nm, mat.bond_cutoff_nm)
        m = dev.uniform_slab_size() * mat.orbitals_per_atom
        rows.append(
            (name, s.n_atoms, mat.orbitals_per_atom,
             s.n_atoms * mat.orbitals_per_atom, dev.n_slabs, m, "built")
        )
    # --- projected paper-scale devices ---------------------------------------
    mat = silicon_sp3d5s().with_spin()
    for name, atoms_per_slab, n_slabs in [
        ("Si NW 5nm GAA (paper scale)", 1000, 65),
        ("Si UTB 100k atoms (paper scale)", 770, 130),
    ]:
        n_atoms = atoms_per_slab * n_slabs
        rows.append(
            (name, n_atoms, mat.orbitals_per_atom,
             n_atoms * mat.orbitals_per_atom, n_slabs,
             atoms_per_slab * mat.orbitals_per_atom, "projected")
        )
    return rows


def test_t1_device_table(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print_experiment(
        "T1",
        "device benchmark structures",
        "paper class: table of simulated devices (atoms, Hamiltonian size);"
        "\nsmall devices are constructed for real, paper-scale ones projected"
        " from per-cell counts",
    )
    print(format_table(
        ["device", "atoms", "orb/atom", "H dim", "slabs N",
         "block m", "status"],
        rows,
    ))
    assert all(r[3] == r[1] * r[2] for r in rows)
    # the projected UTB matches the paper's ~100k-atom, multi-million-dof scale
    assert rows[-1][1] * rows[-1][2] > 1_000_000
