"""F8 — spatial domain decomposition: the SplitSolve solver.

Regenerates the figure class of the authors' 2008 precursor paper (and the
level-4 parallelism of SC'11): the Schur-complement domain-decomposition
solver against the monolithic block LU.

* measured: serial execution time vs number of domains (the decomposition
  does the same arithmetic reorganised, so serial time mildly increases
  with P — the win is that the domain work is concurrent);
* modelled: the parallel speedup implied by the measured domain/interface
  split, showing the Amdahl saturation that caps the spatial level.
"""

import time

import numpy as np
from conftest import print_experiment

from repro.io import format_table
from repro.perf import splitsolve_flops
from repro.solvers import BlockTridiagLU, SplitSolve


def make_system(n_blocks=33, m=48, seed=0):
    rng = np.random.default_rng(seed)

    def rand():
        return rng.normal(size=(m, m)) + 1j * rng.normal(size=(m, m))

    diag = [rand() + 4 * m * np.eye(m) for _ in range(n_blocks)]
    upper = [rand() for _ in range(n_blocks - 1)]
    lower = [rand() for _ in range(n_blocks - 1)]
    rhs = [
        rng.normal(size=(m, 4)) + 1j * rng.normal(size=(m, 4))
        for _ in range(n_blocks)
    ]
    return diag, upper, lower, rhs


def test_f8_splitsolve(benchmark):
    def measure():
        diag, upper, lower, rhs = make_system()
        n_blocks = len(diag)
        m = diag[0].shape[0]
        # monolithic reference
        t0 = time.perf_counter()
        lu = BlockTridiagLU(diag, upper, lower)
        x_ref = np.vstack(lu.solve(rhs))
        t_mono = time.perf_counter() - t0
        rows = []
        for p in (1, 2, 4, 8):
            t0 = time.perf_counter()
            ss = SplitSolve(diag, upper, lower, n_domains=p)
            x = np.vstack(ss.solve(rhs))
            t_serial = time.perf_counter() - t0
            err = np.abs(x - x_ref).max()
            # modelled parallel time: domain phase concurrent over p ranks
            split = splitsolve_flops(n_blocks, m, p)
            serial_frac = split["interface"] / (
                split["domain"] * p + split["interface"]
            )
            t_parallel = t_serial * (
                (1 - serial_frac) / p + serial_frac
            )
            rows.append((
                p, f"{t_serial * 1e3:.1f}", f"{t_parallel * 1e3:.1f}",
                f"{t_mono / t_parallel:.2f}", f"{err:.1e}",
            ))
        return t_mono, rows

    t_mono, rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_experiment(
        "F8",
        "SplitSolve domain decomposition (33 blocks x 48, 4 RHS)",
        f"monolithic block LU: {t_mono * 1e3:.1f} ms; parallel time = "
        "measured serial work redistributed over P ranks + serial interface",
    )
    print(format_table(
        ["domains P", "serial total (ms)", "parallel time (ms)",
         "speedup vs mono", "max |x - x_ref|"],
        rows,
    ))
    # exactness at every P
    assert all(float(r[4]) < 1e-7 for r in rows)
    # parallel speedup grows with P ...
    speedups = [float(r[3]) for r in rows]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 1.5
    # ... but sub-linearly (Amdahl interface)
    assert speedups[-1] < 8.0


def test_f8_interface_fraction_model(benchmark):
    def fractions():
        rows = []
        for p in (2, 4, 8, 16, 32):
            split = splitsolve_flops(130, 4000, p)
            frac = split["interface"] / (split["domain"] * p + split["interface"])
            max_speedup = 1.0 / (frac + (1 - frac) / p)
            rows.append((p, f"{frac * 100:.1f}%", f"{max_speedup:.1f}"))
        return rows

    rows = benchmark.pedantic(fractions, rounds=1, iterations=1)
    print_experiment(
        "F8b",
        "modelled interface (serial) fraction at paper scale (130 x 4000)",
        "the serial interface work caps the spatial-level speedup (Amdahl)",
    )
    print(format_table(
        ["domains P", "serial fraction", "Amdahl speedup cap"], rows,
    ))
    fracs = [float(r[1][:-1]) for r in rows]
    assert all(b > a for a, b in zip(fracs[:-1], fracs[1:]))
