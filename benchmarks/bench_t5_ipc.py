"""T5 — zero-copy plan dispatch: serialized bytes per task and wall time.

The process backend historically pickled a full solver (Hamiltonian
blocks included) into every chunk payload.  The zero-copy execution plan
publishes that state once per (bias, k) into a shared-memory segment and
ships only ``(plan_id, arena_id, slot_indices)`` per task.  This
benchmark measures both sides of that trade:

* **payload bytes** — the pickled size of one legacy chunk payload vs
  one plan-id payload, on the real payload tuples the backends ship
  (the acceptance bar is a >= 5x reduction);
* **end-to-end wall time** — a process-backend bias solve with the
  legacy path vs the plan path, bit-identical outputs asserted.

``--smoke`` records both as the ``BENCH_ipc`` measured baseline.
"""

import pickle
import time

import numpy as np
from conftest import print_experiment, record_baseline

from repro.core import DeviceSpec, TransportCalculation, build_device
from repro.parallel import ResultArena, active_plans, split_chunks
from repro.parallel.plan import slot_width


def _built(n_x=14):
    spec = DeviceSpec(
        name="bench-ipc",
        n_x=n_x,
        n_y=2,
        n_z=2,
        spacing_nm=0.25,
        source_cells=4,
        drain_cells=4,
        gate_cells=(5, n_x - 5),
        donor_density_nm3=0.05,
        material_params={"m_rel": 0.3},
    )
    return build_device(spec)


def _payload_report(built, n_energy=41, workers=4):
    """Pickled bytes of the real chunk payloads, legacy vs plan path."""
    # backend="process" so the published plan is segment-backed — the
    # plan-id payload then carries real (fixed-length) segment names
    tc = TransportCalculation(
        built, method="rgf", n_energy=n_energy,
        backend="process", workers=workers, zero_copy=True,
    )
    pot = np.zeros(built.n_atoms)
    grid = tc.energy_grid(pot, 0.05)
    k0 = float(built.momentum_grid.k_points[0])
    H = tc.hamiltonian(pot, k0)
    solver = tc._make_solver(H)
    energies = [float(e) for e in grid.energies]
    chunks = split_chunks(len(energies), workers)

    legacy = [
        (solver, [energies[i] for i in chunk], False, None, cid)
        for cid, chunk in enumerate(chunks)
    ]
    legacy_bytes = [len(pickle.dumps(p)) for p in legacy]

    plan = tc._publish_plan(H, grid, potential_fp="bench")
    n_tot = int(H.block_sizes.sum())
    arena = ResultArena.allocate(
        len(energies), slot_width(n_tot, H.n_blocks)
    )
    try:
        zero = [
            (plan.plan_id, arena.arena_id, tuple(chunk), False, None, cid)
            for cid, chunk in enumerate(chunks)
        ]
        zero_bytes = [len(pickle.dumps(p)) for p in zero]
        plan_nbytes = int(plan.nbytes)
        arena_nbytes = int(arena._plan.nbytes)
    finally:
        arena.release()
        plan.release()
    assert active_plans() == []

    pickled = float(np.mean(legacy_bytes))
    zero_copy = float(np.mean(zero_bytes))
    return {
        "n_energies": len(energies),
        "n_chunks": len(chunks),
        "n_blocks": int(H.n_blocks),
        "n_orbitals": n_tot,
        "payload.pickled_bytes": pickled,
        "payload.zero_copy_bytes": zero_copy,
        "payload.reduction": pickled / zero_copy,
        "plan.segment_bytes": plan_nbytes,
        "arena.segment_bytes": arena_nbytes,
    }


def _best_of(fn, repeats):
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _timing_report(built, n_energy=31, workers=2, repeats=3):
    """Process-backend bias solve, legacy vs plan dispatch (bit-equal)."""
    pot = np.zeros(built.n_atoms)
    out = {}
    results = {}
    for label, zc in (("pickled", False), ("zero_copy", True)):
        tc = TransportCalculation(
            built, method="rgf", n_energy=n_energy,
            backend="process", workers=workers, zero_copy=zc,
        )
        grid = tc.energy_grid(pot, 0.05)
        tc.solve_bias(pot, 0.05, energy_grid=grid)  # warm the pool
        best, res = _best_of(
            lambda: tc.solve_bias(pot, 0.05, energy_grid=grid), repeats
        )
        out[f"solve.{label}_wall_time_s"] = best
        results[label] = res
    np.testing.assert_array_equal(
        results["pickled"].transmission, results["zero_copy"].transmission
    )
    assert results["pickled"].current_a == results["zero_copy"].current_a
    out["solve.speedup"] = (
        out["solve.pickled_wall_time_s"] / out["solve.zero_copy_wall_time_s"]
    )
    return out


def test_t5_payload_reduction():
    """The plan payload must undercut the pickled payload by >= 5x."""
    report = _payload_report(_built(n_x=12), n_energy=21, workers=2)
    assert report["payload.reduction"] >= 5.0, report


def _smoke():
    built = _built()
    report = _payload_report(built)
    report.update(_timing_report(built, repeats=2))
    assert report["payload.reduction"] >= 5.0, report
    path = record_baseline("ipc", report)
    print_experiment(
        "T5/ipc",
        f"task payload {report['payload.pickled_bytes'] / 1e3:.1f} kB "
        f"pickled -> {report['payload.zero_copy_bytes']:.0f} B zero-copy "
        f"({report['payload.reduction']:.0f}x smaller); "
        f"solve {report['solve.pickled_wall_time_s'] * 1e3:.0f} ms -> "
        f"{report['solve.zero_copy_wall_time_s'] * 1e3:.0f} ms "
        f"({report['solve.speedup']:.2f}x)",
        notes=f"baseline -> {path}",
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="measure payload reduction + solve timing and write "
             "BENCH_ipc.json",
    )
    args = parser.parse_args()
    if args.smoke:
        _smoke()
    else:
        parser.error("run under pytest for the assertion-only check, "
                     "or pass --smoke")
