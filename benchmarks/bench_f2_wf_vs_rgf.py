"""F2 — algorithm comparison: wave-function vs recursive Green's function.

The central algorithmic claim of the paper: the wave-function (QTBM)
kernel beats RGF per (k, E) point, and the gap *grows* with cross-section
because WF replaces the O(N m^3)-with-large-constant selected inversion by
one cheap factorisation plus one back-substitution per open channel
(channels << m).  Regenerated two ways:

* measured: wall time per energy point of both kernels on real devices of
  growing cross-section (identical transmissions asserted);
* counted: analytic flop ratio up to the paper-scale block sizes.
"""

import time

import numpy as np

from conftest import grid_transport_system, print_experiment

from repro.io import format_si, format_table
from repro.negf import RGFSolver
from repro.perf import rgf_solve_flops, wf_solve_flops
from repro.wf import WFSolver


def measure_cases():
    """Kernel-only wall times (contacts excluded: both kernels share them).

    The WF solver runs in its economical production mode (inject only the
    open channels), which is the configuration the paper benchmarks.
    """
    rows = []
    for n_yz in (6, 8, 10, 12):
        H = grid_transport_system(n_x=12, n_yz=n_yz)
        wf = WFSolver(H, injection_tol_ev=1e-4)
        rgf = RGFSolver(H)
        energies = [0.5, 0.65]
        sigmas = {e: wf.self_energies(e) for e in energies}

        def wf_kernel():
            vals = []
            for e in energies:
                sig_l, sig_r = sigmas[e]
                lu = wf._factor(e, sig_l, sig_r)
                psi = wf._scattering_states(lu, sig_l, 0)
                off = H.block_offsets()
                last = int(off[-2])
                blk = psi[last : last + sig_r.gamma.shape[0], :]
                vals.append(
                    float(
                        np.einsum(
                            "im,ij,jm->", blk.conj(), sig_r.gamma, blk
                        ).real
                    )
                )
            return vals

        def rgf_kernel():
            from repro.negf.rgf import assemble_system_blocks
            from repro.solvers import BlockTridiagLU

            vals = []
            for e in energies:
                sig_l, sig_r = sigmas[e]
                lu = BlockTridiagLU(
                    *assemble_system_blocks(H, e, sig_l.sigma, sig_r.sigma)
                )
                coln = lu.solve_block_column(H.n_blocks - 1)
                lu.solve_block_column(0)
                lu.diagonal_of_inverse()
                vals.append(
                    float(
                        np.trace(
                            sig_l.gamma @ coln[0] @ sig_r.gamma
                            @ coln[0].conj().T
                        ).real
                    )
                )
            return vals

        t0 = time.perf_counter()
        t_wf_vals = wf_kernel()
        t_wf = (time.perf_counter() - t0) / len(energies)
        t0 = time.perf_counter()
        t_rgf_vals = rgf_kernel()
        t_rgf = (time.perf_counter() - t0) / len(energies)
        m = int(H.block_sizes.max())
        rows.append((
            f"{n_yz}x{n_yz}", m, f"{t_wf * 1e3:.1f}", f"{t_rgf * 1e3:.1f}",
            f"{t_rgf / t_wf:.2f}x",
            f"{max(abs(a - b) for a, b in zip(t_wf_vals, t_rgf_vals)):.1e}",
        ))
    return rows


def test_f2_measured_comparison(benchmark):
    rows = benchmark.pedantic(measure_cases, rounds=1, iterations=1)
    print_experiment(
        "F2a",
        "WF vs RGF: measured kernel wall time per energy point",
        "identical physics (max |T_WF - T_RGF| in last column); the WF"
        " advantage grows with cross-section (asymptotics in F2b)",
    )
    print(format_table(
        ["cross-section", "block m", "WF (ms/pt)", "RGF (ms/pt)",
         "RGF/WF", "max dT"],
        rows,
    ))
    speedups = [float(r[4][:-1]) for r in rows]
    assert speedups[-1] > 1.0  # WF wins at the largest measured size
    assert speedups[-1] > speedups[0]  # and the advantage grows
    assert all(float(r[5]) < 1e-6 for r in rows)


def test_f2_counted_flops(benchmark):
    def counted():
        rows = []
        n_slabs = 100
        for m, channels in [(100, 6), (500, 12), (2000, 25), (4000, 30)]:
            f_wf = wf_solve_flops(n_slabs, m, channels)
            f_rgf = rgf_solve_flops(n_slabs, m)
            rows.append((
                m, channels, format_si(f_wf, "Flop"),
                format_si(f_rgf, "Flop"), f"{f_rgf / f_wf:.1f}x",
            ))
        return rows

    rows = benchmark.pedantic(counted, rounds=1, iterations=1)
    print_experiment(
        "F2b",
        "WF vs RGF: counted flops per (k, E) point, 100 slabs",
        "paper shape: WF is several-to-15x cheaper, growing with block size",
    )
    print(format_table(
        ["block m", "open channels", "WF flops", "RGF flops", "RGF/WF"],
        rows,
    ))
    ratios = [float(r[4][:-1]) for r in rows]
    assert ratios[-1] > 10.0
    assert all(b >= a for a, b in zip(ratios[:-1], ratios[1:]))
