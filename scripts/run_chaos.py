#!/usr/bin/env python
"""Run the chaos campaign against one or more execution backends.

CI entry point for the self-healing solver stack: deterministically
injects faults (thrown exceptions, NaN poisoning, ill-conditioning,
worker hangs, dead ranks, lost messages) at every one of the paper's
four parallel levels against a mini device, and verifies the
degradation ladders heal every one of them — the reference sweep must
complete, every injected event must be accounted for in the
:class:`~repro.resilience.degrade.DegradationReport`, and a campaign
with zero injected faults must be bit-identical to an unsentineled run.

Writes one JSON summary per backend (the CI artifact) and exits 0 only
if every stage of every campaign passed.

Usage::

    python scripts/run_chaos.py [--backends serial thread process]
                                [--workers N] [--output-dir DIR]

Equivalent to ``python -m repro chaos --backend all`` but with per-file
artifacts laid out for CI upload.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.resilience.chaos import run_campaign, write_campaign_json


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backends", nargs="+", metavar="BACKEND",
        choices=("serial", "thread", "process"),
        default=["serial", "thread", "process"],
        help="execution backends to campaign against (default: all three)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker count for the thread/process backends",
    )
    parser.add_argument(
        "--stages", nargs="+", metavar="STAGE", default=None,
        help="run only these named stages (default: all)",
    )
    parser.add_argument(
        "--output-dir", metavar="DIR", default=None,
        help="write chaos_<backend>.json summaries into DIR",
    )
    args = parser.parse_args(argv)

    out_dir = None
    if args.output_dir:
        out_dir = Path(args.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)

    t0 = time.perf_counter()
    all_passed = True
    for backend in args.backends:
        campaign = run_campaign(
            backend=backend, workers=args.workers, stages=args.stages,
            verbose=True,
        )
        print(campaign.summary())
        all_passed = all_passed and campaign.passed
        if out_dir is not None:
            path = out_dir / f"chaos_{backend}.json"
            write_campaign_json(campaign, path)
            print(f"wrote {path}")
    elapsed = time.perf_counter() - t0
    verdict = "PASS" if all_passed else "FAIL"
    print(f"chaos campaign over {len(args.backends)} backend(s): "
          f"{verdict} in {elapsed:.1f}s")
    return 0 if all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
