#!/usr/bin/env python
"""Check that internal links in the repo's markdown files resolve.

Scans every ``*.md`` file in the repository root and the ``docs/`` tree
(including the generated ``docs/api/`` reference) for inline markdown
links ``[text](target)`` and verifies:

* relative file targets exist (anchors are stripped first);
* pure-anchor targets (``#section``) match a heading in the same file.

External links (http/https/mailto) are not fetched — CI must not depend
on the network.  Exit code 0 when every link resolves, 1 otherwise.

Usage::

    python scripts/check_docs_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def markdown_files(root: Path) -> list[Path]:
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return files


def check_file(path: Path, root: Path) -> list[str]:
    text = path.read_text()
    anchors = {slugify(h) for h in HEADING_RE.findall(text)}
    errors = []
    for target in LINK_RE.findall(text):
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                errors.append(f"{path.relative_to(root)}: broken anchor {target}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(root)}: missing target {target}")
            continue
        if anchor and resolved.suffix == ".md":
            other = {slugify(h) for h in HEADING_RE.findall(resolved.read_text())}
            if anchor not in other:
                errors.append(
                    f"{path.relative_to(root)}: broken anchor #{anchor} "
                    f"in {file_part}"
                )
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    files = markdown_files(root)
    errors: list[str] = []
    n_links = 0
    for path in files:
        n_links += sum(
            1
            for t in LINK_RE.findall(path.read_text())
            if not t.startswith(EXTERNAL)
        )
        errors.extend(check_file(path, root))
    for err in errors:
        print(f"ERROR: {err}")
    print(
        f"checked {len(files)} markdown files, {n_links} internal links, "
        f"{len(errors)} broken"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
