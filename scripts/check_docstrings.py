#!/usr/bin/env python
"""Lint docstring coverage of the enforced public API surface.

The API reference (``scripts/gen_api_docs.py``) renders the first
paragraph of every public docstring, so a missing docstring is a hole in
the published site, not just a style nit.  This lint walks the enforced
modules with :mod:`ast` (no imports, standard library only) and requires
a docstring on:

* the module itself;
* every public top-level class and function (the module's ``__all__``
  when declared, otherwise every name without a leading underscore);
* every public method and property of a public class.

Enforcement starts with the parallel runtime and the distributed
driver — the layers the documentation site leans on hardest — and grows
by extending ``ENFORCED``.  Everything else under ``src/repro`` is
reported as coverage but does not fail the build.

Usage::

    python scripts/check_docstrings.py [--all]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"

# Paths (relative to src/repro) whose public surface MUST be documented.
ENFORCED = (
    "parallel",
    "core/distributed.py",
)


def enforced_files() -> list[Path]:
    files: list[Path] = []
    for rel in ENFORCED:
        path = SRC / rel
        if path.is_dir():
            files += sorted(path.rglob("*.py"))
        else:
            files.append(path)
    return files


def all_files() -> list[Path]:
    return sorted(SRC.rglob("*.py"))


def declared_all(tree: ast.Module) -> list[str] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                return [
                    e.value for e in node.value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
    return None


def audit_file(path: Path) -> tuple[list[str], int, int]:
    """Return (missing descriptions, n_checked, n_documented)."""
    rel = path.relative_to(REPO)
    tree = ast.parse(path.read_text())
    exported = declared_all(tree)
    missing: list[str] = []
    checked = documented = 0

    def note(node, label: str) -> None:
        nonlocal checked, documented
        checked += 1
        if ast.get_docstring(node):
            documented += 1
        else:
            lineno = getattr(node, "lineno", 1)
            missing.append(f"{rel}:{lineno}: {label}")

    note(tree, "module docstring")
    for node in tree.body:
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if exported is not None:
            if node.name not in exported:
                continue
        elif node.name.startswith("_"):
            continue
        kind = "class" if isinstance(node, ast.ClassDef) else "function"
        note(node, f"{kind} {node.name}")
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if item.name.startswith("_"):
                    continue
                # property setters/deleters share the getter's docstring
                if any(
                    isinstance(d, ast.Attribute)
                    and d.attr in ("setter", "deleter")
                    for d in item.decorator_list
                ):
                    continue
                note(item, f"method {node.name}.{item.name}")
    return missing, checked, documented


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--all", action="store_true",
        help="enforce every module under src/repro, not just the "
             "ENFORCED set",
    )
    args = parser.parse_args(argv)

    enforced = set(all_files() if args.all else enforced_files())
    failures: list[str] = []
    tot_checked = tot_documented = 0
    for path in all_files():
        missing, checked, documented = audit_file(path)
        tot_checked += checked
        tot_documented += documented
        if path in enforced:
            failures += missing
    for line in failures:
        print(f"MISSING {line}")
    pct = 100.0 * tot_documented / tot_checked if tot_checked else 100.0
    print(
        f"docstrings: {tot_documented}/{tot_checked} public objects "
        f"documented ({pct:.1f}%), {len(failures)} missing on the "
        f"enforced surface"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
