#!/usr/bin/env python
"""Regenerate the committed ``benchmarks/baselines/BENCH_*.json`` files.

Runs exactly the benchmark tests that call ``record_baseline`` (the
measured-baseline producers — currently the T3 RGF flop cross-check, the
F3 energy-level scaling probe and the F5 local sustained-Flop/s run) so
the baselines the regression gate (``repro doctor``,
``repro.observability.check_against_baselines``) compares against match
the code in the working tree.

The instrumented *flop counts* in these files are deterministic — they
change only when a kernel's algorithm changes, which is precisely when a
refresh is the intended, reviewed action.  The *timing* fields
(``wall_time_s``, ``sustained_flops``) are machine-dependent; the
regression bands only warn on those, so refreshing on a different machine
is safe.

Usage::

    python scripts/refresh_baselines.py [--check] [--dir DIR]

``--check`` regenerates into a scratch directory and exits 1 if any
deterministic (non-timing) field differs from the committed baselines —
the mode the CI gate uses.  Without it, the committed files are
rewritten in place (commit the diff deliberately).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
BASELINE_DIR = REPO / "benchmarks" / "baselines"

#: The benchmark tests that write baselines, with the file each produces.
#: Targets ending in ``--smoke`` are plain scripts, not pytest node ids.
PRODUCERS = [
    ("benchmarks/bench_t3_kernels.py::test_t3_measured_flop_crosscheck",
     "BENCH_t3_rgf.json"),
    ("benchmarks/bench_t3_kernels.py --smoke", "BENCH_kernels.json"),
    ("benchmarks/bench_f3_strong_scaling.py", "BENCH_f3_energy_level.json"),
    ("benchmarks/bench_f5_petaflops.py", "BENCH_f5_local.json"),
    ("benchmarks/bench_t5_ipc.py --smoke", "BENCH_ipc.json"),
    ("benchmarks/bench_t6_telemetry.py --smoke", "BENCH_telemetry.json"),
    ("benchmarks/bench_t7_adaptive.py --smoke", "BENCH_adaptive.json"),
    ("benchmarks/bench_t8_precision.py --smoke", "BENCH_precision.json"),
]

#: Machine-dependent fields ignored by ``--check`` (warn-only in the gate).
#: ``delta_bytes`` is here because worker metric snapshots embed
#: timing-histogram buckets, whose keys (and thus pickled size) depend
#: on the machine's measured latencies.
TIMING_FIELDS = (
    "wall_time_s", "sustained_flops", "walltime", "seconds", "speedup",
    "delta_bytes",
)


def _is_timing(key: str) -> bool:
    return (
        key.startswith("time.")
        or key.endswith("_s")
        or any(t in key for t in TIMING_FIELDS)
    )


def run_producers(out_dir: Path) -> int:
    """Run every producer benchmark with baselines redirected to out_dir."""
    env = dict(os.environ)
    env["REPRO_BENCH_DIR"] = str(out_dir)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    rc = 0
    for target, produced in PRODUCERS:
        print(f"==> {target}  ->  {produced}")
        if target.endswith("--smoke"):
            cmd = [sys.executable] + target.split()
        else:
            cmd = [sys.executable, "-m", "pytest", "-x", "-q",
                   "--benchmark-disable", target]
        proc = subprocess.run(cmd, cwd=REPO, env=env)
        if proc.returncode:
            print(f"FAILED: {target} (exit {proc.returncode})",
                  file=sys.stderr)
            rc = proc.returncode
    return rc


def compare(fresh_dir: Path, committed_dir: Path) -> int:
    """Exit status 1 if any deterministic field drifted."""
    drift = 0
    for _, produced in PRODUCERS:
        fresh_path = fresh_dir / produced
        committed_path = committed_dir / produced
        if not fresh_path.exists():
            print(f"MISSING fresh {produced} (producer failed?)")
            drift = 1
            continue
        if not committed_path.exists():
            print(f"NEW {produced}: no committed baseline yet")
            drift = 1
            continue
        fresh = json.loads(fresh_path.read_text())
        committed = json.loads(committed_path.read_text())
        keys = sorted(set(fresh) | set(committed))
        for key in keys:
            if _is_timing(key):
                continue
            a, b = committed.get(key), fresh.get(key)
            if a != b:
                print(f"DRIFT {produced}:{key}: committed {a!r} != "
                      f"fresh {b!r}")
                drift = 1
    if not drift:
        print("baselines: all deterministic fields match")
    return drift


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="regenerate into a scratch dir and diff deterministic fields "
             "against the committed baselines instead of overwriting them",
    )
    parser.add_argument(
        "--dir", default=None,
        help=f"output directory (default: {BASELINE_DIR})",
    )
    args = parser.parse_args(argv)

    if args.check:
        with tempfile.TemporaryDirectory(prefix="repro-baselines-") as tmp:
            rc = run_producers(Path(tmp))
            if rc:
                return rc
            return compare(Path(tmp), BASELINE_DIR)

    out_dir = Path(args.dir) if args.dir else BASELINE_DIR
    rc = run_producers(out_dir)
    if rc:
        return rc
    print(f"refreshed baselines in {out_dir}; review and commit the diff")
    return 0


if __name__ == "__main__":
    sys.exit(main())
