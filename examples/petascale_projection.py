"""Reproducing the 1.44 PFlop/s headline with the performance model.

The paper's performance contribution — sustained petascale throughput from
the four-level parallel decomposition — cannot be *measured* from Python on
one node, so (per DESIGN.md) it is *modelled*: the analytic per-kernel flop
counts drive a Cray-XT5 machine model, and the level decomposition and
load-balance arithmetic are the real scheduler's.  This example prints:

1. the modelled strong scaling of a paper-scale ultra-thin-body device up
   to 221,130 cores, with the sustained Flop/s saturating near 1.4-1.5
   PFlop/s (paper: 1.44 PFlop/s = 62% of peak);
2. the measured local run: an actual transport solve, its counted flops and
   sustained MFlop/s on this machine, grounding the accounting convention.

Run:  python examples/petascale_projection.py
"""

import time

import numpy as np

from repro.core import DeviceSpec, TransportCalculation, build_device
from repro.io import format_si, format_table
from repro.perf import JAGUAR_XT5, TransportWorkload, strong_scaling


def main():
    # --- paper-scale workload: ~100k-atom UTB, sp3d5s*, full bias sweep ---
    workload = TransportWorkload(
        n_slabs=130,
        block_size=4000,
        n_bias=15,
        n_k=21,
        n_energy=702,
        n_channels=30,
        algorithm="wf",
        n_scf_iterations=3,
    )
    print(f"modelled workload: {workload.n_slabs} slabs x {workload.block_size} "
          f"orbitals, {workload.n_bias} bias x {workload.n_k} k x "
          f"{workload.n_energy} E points, "
          f"{format_si(workload.total_flops(), 'Flop')} total")
    print(f"machine: {JAGUAR_XT5.name}, "
          f"{format_si(JAGUAR_XT5.peak_flops, 'Flop/s')} peak\n")

    ranks = [1024, 4096, 16384, 65536, 131072, 221130]
    rows = []
    base = None
    for r in strong_scaling(workload, JAGUAR_XT5, ranks):
        if base is None:
            base = r
        speedup = base.walltime_s / r.walltime_s * base.n_ranks
        rows.append((
            f"{r.n_ranks:>7d}",
            "x".join(str(g) for g in r.groups),
            f"{r.walltime_s / 3600:.1f}",
            f"{speedup / r.n_ranks * 100:.0f}%",
            format_si(r.sustained_flops, "Flop/s"),
            f"{r.fraction_of_peak * 100:.1f}%",
        ))
    print(format_table(
        ["cores", "groups (bias x k x E x spatial)", "walltime (h)",
         "parallel eff", "sustained", "of used peak"],
        rows,
        title="modelled strong scaling (paper: 1.44 PFlop/s sustained at "
              "221,400 cores, 62% of peak)",
    ))

    # --- grounding: measured local run ------------------------------------
    spec = DeviceSpec(
        n_x=12, n_y=3, n_z=3, spacing_nm=0.25, source_cells=4,
        drain_cells=4, gate_cells=(4, 7), donor_density_nm3=0.05,
        material_params={"m_rel": 0.3},
    )
    built = build_device(spec)
    tc = TransportCalculation(built, method="wf", n_energy=41)
    t0 = time.perf_counter()
    res = tc.solve_bias(np.zeros(built.n_atoms), v_drain=0.1)
    dt = time.perf_counter() - t0
    print(f"\nmeasured local grounding run: {built.n_atoms}-atom device, "
          f"41 energy points")
    print(f"  counted {format_si(res.flops.total, 'Flop')} in {dt:.2f} s -> "
          f"sustained {format_si(res.flops.total / dt, 'Flop/s')} "
          "(1 Python process; same accounting convention as the model)")


if __name__ == "__main__":
    main()
