"""Resonant tunnelling diode: negative differential resistance.

The classic validation device of quantum-transport codes (and of the
NEMO/OMEN lineage specifically): a double-barrier structure whose
quasi-bound level produces a transmission resonance; sweeping the bias
slides the emitter window across the resonance, so the current *peaks and
then drops* — negative differential resistance, impossible in any
semiclassical model.

Built here on the single-band effective-mass chain (exactly solvable
substrate) with a linear potential drop across the double barrier; the
adaptive energy grid resolves the resonance, which is far too narrow for
any affordable uniform grid.

Run:  python examples/resonant_tunneling_diode.py
"""

import numpy as np

from repro.io import format_si, format_table
from repro.negf import RGFSolver, landauer_current
from repro.physics.constants import KT_ROOM, effective_mass_hopping
from repro.physics.grids import AdaptiveEnergyGrid
from repro.tb import BlockTridiagonalHamiltonian
from repro.tb.chain import chain_blocks

# --- device: GaAs-like effective-mass double barrier ----------------------
# 7.3 nm well between 1.4 nm x 1 eV barriers: quasi-bound level E1 ~ 0.1 eV
# with a sub-meV width -> a sharp transmission resonance.
M_REL = 0.067
SPACING = 0.28  # nm
N_SITES = 56
BARRIER_HEIGHT = 1.0  # eV
BARRIER_SITES = (slice(10, 15), slice(41, 46))
MU = 0.05  # emitter Fermi level above the band bottom


def device_hamiltonian(v_bias: float) -> BlockTridiagonalHamiltonian:
    """Double barrier + linear bias drop across the active region."""
    t = effective_mass_hopping(M_REL, SPACING)
    e0 = 2.0 * t  # 1-D band bottom at 0
    pot = np.zeros(N_SITES)
    for s in BARRIER_SITES:
        pot[s] += BARRIER_HEIGHT
    # linear drop between the outer barrier edges, flat leads
    left, right = 10, 46
    ramp = np.clip((np.arange(N_SITES) - left) / (right - left), 0.0, 1.0)
    pot -= v_bias * ramp
    diag, up = chain_blocks(N_SITES, e0, t, pot)
    return BlockTridiagonalHamiltonian(diag, up)


def current(v_bias: float) -> tuple[float, int]:
    """Landauer current through the biased RTD (adaptive resonance capture)."""
    H = device_hamiltonian(v_bias)
    solver = RGFSolver(H, eta=1e-10)
    mu_l, mu_r = MU, MU - v_bias
    emin = 1e-4  # emitter band bottom
    emax = MU + 10 * KT_ROOM
    adaptive = AdaptiveEnergyGrid(emin, emax, n_initial=65, tol=1e-3,
                                  max_points=1200)
    grid = adaptive.refine(lambda e: solver.transmission(float(e)))
    t_vals = adaptive.sampled_values(grid)
    i = landauer_current(grid, t_vals, mu_l, mu_r, KT_ROOM)
    return i, len(grid)


def main():
    biases = np.linspace(0.0, 0.36, 19)
    rows = []
    currents = []
    for v in biases:
        i, n_pts = current(float(v))
        currents.append(i)
        rows.append((f"{v:.3f}", format_si(i, "A"), n_pts))
    print(format_table(
        ["V bias (V)", "current", "adaptive E points"], rows,
        title="resonant tunnelling diode I-V (double barrier, m* = 0.067)",
    ))
    currents = np.array(currents)
    # the NDR peak is the bias maximising the peak-to-valley ratio
    best_pvr, p_idx, v_idx = 0.0, 0, 0
    for k in range(1, len(currents) - 1):
        valley_k = int(currents[k + 1 :].argmin()) + k + 1
        pvr = currents[k] / max(currents[valley_k], 1e-300)
        if pvr > best_pvr:
            best_pvr, p_idx, v_idx = pvr, k, valley_k
    print(f"\npeak    : {format_si(currents[p_idx], 'A')} "
          f"at {biases[p_idx]:.3f} V")
    print(f"valley  : {format_si(currents[v_idx], 'A')} "
          f"at {biases[v_idx]:.3f} V")
    print(f"peak-to-valley ratio: {best_pvr:.1f} "
          "(negative differential resistance)")


if __name__ == "__main__":
    main()
