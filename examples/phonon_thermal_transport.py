"""Phonons and ballistic thermal transport in silicon nanowires.

The companion workload of the electronic simulator (cf. the authors'
papers on nanowire phonon spectra and thermal properties): the Keating
valence-force-field gives the lattice dynamics, and the *same* surface-GF +
RGF kernels used for electrons — applied to the mass-weighted dynamical
matrix with energy variable omega^2 — give the phonon transmission and the
Landauer thermal conductance.

1. bulk Si phonon dispersion (Gamma-X) with the textbook features;
2. quantised phonon transmission of a pristine wire;
3. isotope/mass disorder: thermal conductance suppression vs defect
   concentration (how nanostructuring engineers heat flow).

Run:  python examples/phonon_thermal_transport.py
"""

import numpy as np

from repro.io import format_table
from repro.lattice import ZincblendeCell, partition_into_slabs, zincblende_nanowire
from repro.phonons import PhononTransport, bulk_phonon_bands

SI = ZincblendeCell(0.5431, "Si", "Si")


def main():
    # --- 1. bulk dispersion ------------------------------------------------
    kx = 2 * np.pi / SI.a_nm
    fracs = [0.0, 0.25, 0.5, 0.75, 1.0]
    rows = []
    for f in fracs:
        freqs = bulk_phonon_bands(SI, np.array([[f * kx, 0, 0]]))[0]
        rows.append(
            [f"{f:.2f}"] + [f"{x:.2f}" for x in freqs]
        )
    print(format_table(
        ["k (2pi/a)", "TA", "TA'", "LA", "LO", "TO", "TO'"], rows,
        title="bulk Si phonons along Gamma-X (THz), Keating VFF "
              "(Raman mode: Keating ~12.9, experiment 15.5)",
    ))

    # --- 2. wire transmission ----------------------------------------------
    wire = zincblende_nanowire(SI, 5, 1, 1)
    dev = partition_into_slabs(wire, SI.a_nm, SI.bond_length_nm)
    pt = PhononTransport(dev, n_device_slabs=6)
    nus = np.array([0.3, 1.0, 3.0, 5.0, 8.0, 12.0, 16.0])
    xi = pt.transmission(nus)
    print()
    print(format_table(
        ["nu (THz)", "Xi(nu)"],
        [(f"{n:.1f}", f"{x:.3f}") for n, x in zip(nus, xi)],
        title="pristine thin-wire phonon transmission "
              "(integer plateaus = phonon subbands)",
    ))

    # --- 3. mass disorder ---------------------------------------------------
    atoms = pt.dynamics.diagonal[0].shape[0] // 3 * 6
    rng = np.random.default_rng(7)
    rows = []
    g_clean = pt.conductance(300.0, n_freq=32)
    rows.append(("0.00", f"{g_clean * 1e9:.4f}", "1.00"))
    for frac in (0.1, 0.3, 0.5):
        masses = np.where(rng.random(atoms) < frac, 72.63, 28.0855)
        pt_d = PhononTransport(dev, n_device_slabs=6, mass_override=masses)
        g = pt_d.conductance(300.0, n_freq=32)
        rows.append((f"{frac:.2f}", f"{g * 1e9:.4f}", f"{g / g_clean:.3f}"))
    print()
    print(format_table(
        ["heavy-mass fraction", "G_th(300K) (nW/K)", "vs pristine"], rows,
        title="mass-disorder engineering of the wire thermal conductance",
    ))


if __name__ == "__main__":
    main()
