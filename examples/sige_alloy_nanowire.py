"""SiGe alloy nanowires: virtual crystal vs random-alloy disorder.

Alloy engineering is one of the workloads the atomistic simulator exists
for: the virtual crystal approximation (VCA) gives smooth composition
trends, but only a true random-alloy supercell captures disorder
backscattering — thin wires localise, exactly the effect reported in the
authors' SiGe nanowire studies.  This example

1. sweeps the VCA band gap across the Si(1-x)Ge(x) composition range;
2. compares ballistic transmission through a pure wire, the VCA wire and
   an ensemble of random-alloy realisations;
3. shows the disorder-induced spread (device-to-device variability).

Run:  python examples/sige_alloy_nanowire.py
"""

import numpy as np

from repro.io import format_table
from repro.lattice import ZincblendeCell, partition_into_slabs, zincblende_nanowire
from repro.tb import (
    alloy_interior_mask,
    alloy_material,
    build_device_hamiltonian,
    bulk_band_edges,
    germanium_sp3s,
    randomize_species,
    silicon_sp3s,
    virtual_crystal_material,
)
from repro.wf import WFSolver

SI = ZincblendeCell(0.5431, "Si", "Si")


def main():
    si, ge = silicon_sp3s(), germanium_sp3s()

    # --- 1. VCA composition sweep ---------------------------------------
    rows = []
    for x in np.linspace(0.0, 1.0, 6):
        vca = virtual_crystal_material(si, ge, float(x))
        be = bulk_band_edges(vca, n_samples=61)
        rows.append((f"{x:.1f}", f"{be['gap']:.3f}",
                     "Gamma" if be["direct"] else be["cbm_direction"]))
    print(format_table(
        ["Ge fraction x", "VCA gap (eV)", "CB valley"], rows,
        title="Si(1-x)Ge(x) virtual-crystal band gap (bulk)",
    ))

    # --- 2. transport: pure vs VCA vs random alloy -----------------------
    x = 0.5
    am = alloy_material(si, ge)
    vca = virtual_crystal_material(si, ge, x)
    wire = zincblende_nanowire(SI, 8, 1, 1)
    dev = partition_into_slabs(wire, SI.a_nm, SI.bond_length_nm)
    mask = alloy_interior_mask(dev, n_lead_slabs=2)

    energy = 2.5  # inside the pure-Si wire conduction band
    t_pure = WFSolver(build_device_hamiltonian(dev, am)).transmission(energy)

    rng = np.random.default_rng(42)
    t_random = []
    for _ in range(8):
        dis = randomize_species(dev.structure, "Ge", x, rng, mask)
        dev_d = partition_into_slabs(dis, SI.a_nm, SI.bond_length_nm)
        t_random.append(
            WFSolver(build_device_hamiltonian(dev_d, am)).transmission(energy)
        )
    t_random = np.array(t_random)

    print()
    print(format_table(
        ["configuration", "T(E = 2.5 eV)"],
        [
            ("pure Si wire", f"{t_pure:.4f}"),
            ("random alloy, mean of 8", f"{t_random.mean():.4f}"),
            ("random alloy, min..max",
             f"{t_random.min():.4f} .. {t_random.max():.4f}"),
        ],
        title=f"ballistic transmission, x = {x}, "
              f"{mask.sum()}-atom disordered segment",
    ))
    print(f"\ndisorder suppression: <T>/T_pure = "
          f"{t_random.mean() / t_pure:.3f} "
          f"(alloy backscattering; thin wires localise)")
    print(f"device-to-device spread: sigma(T)/<T> = "
          f"{t_random.std() / t_random.mean():.2f}")


if __name__ == "__main__":
    main()
