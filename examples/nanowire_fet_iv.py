"""Device engineering: full I-V characteristics of a nanowire FET.

The point of a petascale device simulator is not a single solve but full
transfer (Id-Vg) and output (Id-Vd) characteristics with figures of merit —
subthreshold swing, on/off ratio — that a device engineer iterates on.
This example sweeps both characteristics of a gate-all-around wire
(single-band effective-mass model, ~150 atoms so it runs in minutes) and
prints the engineering summary.

Run:  python examples/nanowire_fet_iv.py [--fast]
"""

import sys
import time

import numpy as np

from repro.core import (
    DeviceSpec,
    IVSweep,
    SelfConsistentSolver,
    TransportCalculation,
    build_device,
    subthreshold_swing_mv_dec,
)
from repro.io import format_si, format_table


def main(fast: bool = False):
    spec = DeviceSpec(
        name="gaa-nwfet",
        n_x=12,
        n_y=2,
        n_z=2,
        spacing_nm=0.25,
        source_cells=4,
        drain_cells=4,
        gate_cells=(4, 7),
        donor_density_nm3=0.05,
        material_params={"m_rel": 0.3},
    )
    built = build_device(spec)
    transport = TransportCalculation(built, method="wf", n_energy=81)
    scf = SelfConsistentSolver(built, transport)
    sweep = IVSweep(scf)

    n_vg = 5 if fast else 9
    v_drain = 0.05
    gate_voltages = np.linspace(-0.45, 0.1, n_vg)

    print(f"device: {built.n_atoms}-atom gate-all-around nanowire FET, "
          f"gate {spec.gate_cells}, N_D = {spec.donor_density_nm3} nm^-3")
    t0 = time.perf_counter()
    transfer = sweep.transfer_curve(gate_voltages, v_drain=v_drain)
    t_transfer = time.perf_counter() - t0

    rows = [
        (f"{p.v_gate:+.3f}", format_si(p.current_a, "A"),
         "yes" if p.converged else "NO", p.n_iterations)
        for p in transfer.points
    ]
    print()
    print(format_table(
        ["V_G (V)", "I_D", "converged", "SCF iters"], rows,
        title=f"transfer characteristic at V_D = {v_drain} V",
    ))

    ss = subthreshold_swing_mv_dec(
        transfer.gate_voltages()[: n_vg // 2 + 1],
        transfer.currents()[: n_vg // 2 + 1],
    )
    print(f"\nsubthreshold swing : {ss:.1f} mV/dec "
          f"(thermionic limit 59.6)")
    print(f"on/off ratio       : {transfer.on_off_ratio():.2e}")
    print(f"wall time          : {t_transfer:.0f} s, "
          f"{format_si(transfer.flops.total, 'Flop')} counted")

    # output characteristic
    drain_voltages = np.array([0.02, 0.1, 0.2, 0.3])
    t0 = time.perf_counter()
    output = sweep.output_curve(v_gate=0.0, drain_voltages=drain_voltages)
    t_output = time.perf_counter() - t0
    rows = [
        (f"{p.v_drain:.2f}", format_si(p.current_a, "A"),
         "yes" if p.converged else "NO")
        for p in output.points
    ]
    print()
    print(format_table(
        ["V_D (V)", "I_D", "converged"], rows,
        title="output characteristic at V_G = 0.0 V",
    ))
    i = output.currents()
    print(f"\nsaturation: g_d(last segment) / g_d(first segment) = "
          f"{((i[-1]-i[-2])/(drain_voltages[-1]-drain_voltages[-2])) / ((i[1]-i[0])/(drain_voltages[1]-drain_voltages[0])):.3f}")
    print(f"wall time: {t_output:.0f} s")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
