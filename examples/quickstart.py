"""Quickstart: simulate one bias point of a gate-all-around nanowire FET.

Builds the default fast device (single-band effective-mass silicon wire,
~200 atoms), runs the self-consistent Poisson + wave-function-transport
loop at one gate/drain bias, and prints the terminal current plus a
breakdown of where the (counted) flops went.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro.core import (
    DeviceSpec,
    SelfConsistentSolver,
    TransportCalculation,
    build_device,
)
from repro.io import format_si, format_table


def main():
    spec = DeviceSpec(
        name="quickstart-nwfet",
        n_x=14,                 # 14 slabs of 0.25 nm = 3.5 nm long
        n_y=3,
        n_z=3,                  # 0.75 x 0.75 nm cross-section
        spacing_nm=0.25,
        source_cells=4,
        drain_cells=4,
        gate_cells=(5, 8),      # 1 nm gate in the middle
        donor_density_nm3=0.05,  # 5e19 cm^-3 n+ contacts
        material_params={"m_rel": 0.3},
    )
    built = build_device(spec)
    print(f"device: {built.n_atoms} atoms in {built.device.n_slabs} slabs, "
          f"Poisson mesh {built.poisson_grid.shape}")
    print(f"contact band edge (wire CBM) = {built.band_edge:.3f} eV, "
          f"mu_source = {built.contact_mu('source'):.3f} eV")

    transport = TransportCalculation(built, method="wf", n_energy=81)
    scf = SelfConsistentSolver(built, transport)

    v_gate, v_drain = 0.0, 0.2
    t0 = time.perf_counter()
    result = scf.run(v_gate=v_gate, v_drain=v_drain)
    elapsed = time.perf_counter() - t0

    print(f"\nbias: V_G = {v_gate} V, V_D = {v_drain} V")
    print(f"SCF converged: {result.converged} in {result.n_iterations} "
          f"iterations (final residual {result.residuals[-1]:.1e} V)")
    print(f"drain current: {format_si(result.transport.current_a, 'A')}")
    print(f"wall time: {elapsed:.1f} s, counted flops: "
          f"{format_si(result.flops.total, 'Flop')}, sustained "
          f"{format_si(result.flops.total / elapsed, 'Flop/s')}")

    rows = [
        (name, format_si(flops, "Flop"), f"{frac * 100:.1f}%")
        for name, flops, frac in result.flops.breakdown()
    ]
    print()
    print(format_table(["kernel", "flops", "share"], rows,
                       title="flop breakdown"))

    # band profile along the channel
    slab = built.device.slab_of_atom()
    profile = [
        result.potential_ev[slab == s].mean()
        for s in range(built.device.n_slabs)
    ]
    print("\nconduction-band profile along x (eV, relative to contacts):")
    print("  " + " ".join(f"{p - profile[0]:+.3f}" for p in profile))


if __name__ == "__main__":
    main()
