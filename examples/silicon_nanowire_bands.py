"""Full-band atomistic silicon: bulk bands, wire confinement, transmission.

Exercises the empirical tight-binding layer the way the paper's devices do:

1. bulk Si band structure in sp3s* and sp3d5s* (indirect gap near X);
2. nanowire subbands vs cross-section — quantum confinement opens the gap;
3. ballistic transmission of a [100] Si wire computed with BOTH transport
   kernels (wave-function and RGF), which must agree to solver precision —
   the integer conductance plateaus count the open subbands.

Run:  python examples/silicon_nanowire_bands.py
"""

import time

import numpy as np

from repro.lattice import ZincblendeCell, partition_into_slabs, zincblende_nanowire
from repro.negf import RGFSolver
from repro.tb import (
    build_device_hamiltonian,
    bulk_band_edges,
    periodic_wire_blocks,
    silicon_sp3d5s,
    silicon_sp3s,
    wire_band_edges,
)
from repro.wf import WFSolver
from repro.io import format_table

SI = ZincblendeCell(0.5431, "Si", "Si")


def main():
    # --- 1. bulk ---------------------------------------------------------
    rows = []
    for mat in (silicon_sp3s(), silicon_sp3d5s()):
        be = bulk_band_edges(mat, n_samples=81)
        a = mat.cell.a_nm
        kx = np.linalg.norm(be["cbm_k"]) / (2 * np.pi / a)
        rows.append(
            (mat.name, f"{be['gap']:.3f}", be["cbm_direction"], f"{kx:.2f}")
        )
    print(format_table(
        ["basis", "gap (eV)", "CB valley", "k_min (2pi/a)"], rows,
        title="bulk silicon (experiment: 1.12 eV, X valley at 0.85)",
    ))

    # --- 2. confinement --------------------------------------------------
    mat = silicon_sp3s()
    be = bulk_band_edges(mat, n_samples=41)
    midgap = 0.5 * (be["Ec"] + be["Ev"])
    rows = []
    for n in (1, 2, 3):
        wire = zincblende_nanowire(SI, 2, n, n)
        h00, h01, L = periodic_wire_blocks(wire, mat)
        w = wire_band_edges(h00, h01, L, reference_midgap=midgap)
        side = n * SI.a_nm
        rows.append(
            (f"{side:.2f} x {side:.2f}", wire.n_atoms // 2,
             f"{w['gap']:.3f}", f"{w['gap'] - be['gap']:+.3f}")
        )
    print()
    print(format_table(
        ["cross-section (nm)", "atoms/slab", "wire gap (eV)", "vs bulk"],
        rows,
        title="[100] Si nanowire confinement (sp3s*)",
    ))

    # --- 3. transmission: WF vs RGF --------------------------------------
    wire = zincblende_nanowire(SI, 4, 1, 1)
    dev = partition_into_slabs(wire, SI.a_nm, SI.bond_length_nm)
    H = build_device_hamiltonian(dev, mat)
    wf = WFSolver(H)
    rgf = RGFSolver(H)
    energies = np.linspace(2.3, 3.1, 17)
    rows = []
    t0 = time.perf_counter()
    worst = 0.0
    for e in energies:
        t_wf = wf.transmission(float(e))
        t_rgf = rgf.transmission(float(e))
        worst = max(worst, abs(t_wf - t_rgf))
        rows.append((f"{e:.3f}", f"{t_wf:.4f}", f"{t_rgf:.4f}"))
    print()
    print(format_table(
        ["E (eV)", "T (wave function)", "T (RGF)"], rows,
        title=f"ballistic T(E) of a {wire.n_atoms}-atom Si wire "
              "(integer plateaus = open subbands)",
    ))
    print(f"\nmax |T_WF - T_RGF| = {worst:.2e}  "
          f"({time.perf_counter() - t0:.1f} s for both kernels)")


if __name__ == "__main__":
    main()
